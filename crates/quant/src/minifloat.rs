use crate::error::FormatError;
use crate::quantizer::Quantizer;

/// A bit-accurate IEEE-754-style small float: 1 sign bit, `exp_bits`
/// exponent bits (biased), `man_bits` mantissa bits, with subnormals.
///
/// Two departures from IEEE, both hardware-motivated and shared by
/// Ristretto's minifloat mode:
///
/// * **No infinities/NaN codes** — the top exponent is an ordinary value
///   range, and overflow **saturates** to the largest finite value.
/// * **Round-to-nearest-even** only.
///
/// IEEE binary32 corresponds to `Minifloat::new(8, 23)` (modulo the two
/// departures, which only matter beyond ±3.4e38). The paper lists "analyze
/// custom float widths" as future work; this type implements it, and the
/// ablation bench sweeps it.
///
/// ```
/// use qnn_quant::{Minifloat, Quantizer};
///
/// // IEEE half precision geometry.
/// let f16 = Minifloat::new(5, 10)?;
/// assert_eq!(f16.quantize_value(1.0), 1.0);
/// assert_eq!(f16.quantize_value(1.0009765), 1.0009766); // within one ulp
/// assert_eq!(f16.quantize_value(1e9), f16.max_value()); // saturates
/// # Ok::<(), qnn_quant::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Minifloat {
    exp_bits: u32,
    man_bits: u32,
}

impl Minifloat {
    /// Creates a minifloat geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidWidth`] unless `1 <= exp_bits <= 8`
    /// and `man_bits <= 23` (so every value is exactly representable in
    /// f32).
    pub fn new(exp_bits: u32, man_bits: u32) -> Result<Self, FormatError> {
        if !(1..=8).contains(&exp_bits) {
            return Err(FormatError::InvalidWidth {
                format: "minifloat/exponent",
                bits: exp_bits,
                supported: (1, 8),
            });
        }
        if man_bits > 23 {
            return Err(FormatError::InvalidWidth {
                format: "minifloat/mantissa",
                bits: man_bits,
                supported: (0, 23),
            });
        }
        Ok(Minifloat { exp_bits, man_bits })
    }

    /// Exponent field width.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Mantissa field width.
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Exponent bias, `2^(e-1) - 1`.
    pub fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Smallest normal exponent (unbiased).
    fn min_normal_exp(&self) -> i32 {
        1 - self.bias()
    }

    /// Smallest positive *normal* value; below it the grid is subnormal
    /// and relative error grows without bound (as in IEEE-754).
    pub fn min_positive_normal(&self) -> f32 {
        (self.min_normal_exp() as f32).exp2()
    }

    /// Largest unbiased exponent (top code is a normal value range here).
    fn max_exp(&self) -> i32 {
        ((1i32 << self.exp_bits) - 1) - self.bias()
    }
}

impl Quantizer for Minifloat {
    fn bit_codec(&self) -> Option<crate::codec::BitCodec> {
        Some(crate::codec::BitCodec::Minifloat(*self))
    }

    fn quantize_value(&self, x: f32) -> f32 {
        if x == 0.0 || x.is_nan() {
            return 0.0;
        }
        let sign = if x < 0.0 { -1.0f32 } else { 1.0 };
        let mag = x.abs() as f64;
        if mag.is_infinite() {
            return sign * self.max_value();
        }
        // Decompose |x| = m · 2^e with m ∈ [1, 2).
        let e = mag.log2().floor() as i32;
        // Subnormals pin the exponent at the bottom of the normal range so
        // the grid step stays constant below it.
        let scale_exp = e.clamp(self.min_normal_exp(), self.max_exp());
        // Round the mantissa to man_bits at the chosen exponent: the grid
        // step there is 2^(scale_exp - man_bits).
        let step = (scale_exp as f64 - self.man_bits as f64).exp2();
        let mut q = (mag / step).round_ties_even() * step;
        // Rounding can carry into the next binade; if that leaves the top
        // binade's range, saturate.
        let max = self.max_value() as f64;
        if q > max {
            q = max;
        }
        sign * q as f32
    }

    fn bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    fn describe(&self) -> String {
        format!("float[{}e{}m]", self.exp_bits, self.man_bits)
    }

    fn max_value(&self) -> f32 {
        // Largest value in the top binade: (2 - 2^-man) · 2^max_exp.
        let frac = 2.0 - (-(self.man_bits as f32)).exp2();
        frac * (self.max_exp() as f32).exp2()
    }

    fn min_value(&self) -> f32 {
        -self.max_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_powers_pass_through() {
        let f = Minifloat::new(5, 10).unwrap();
        for &x in &[1.0f32, 2.0, 0.5, -4.0, 0.25] {
            assert_eq!(f.quantize_value(x), x);
        }
    }

    #[test]
    fn mantissa_rounding() {
        let f = Minifloat::new(5, 2).unwrap(); // 2 mantissa bits: steps of 1/4 binade
                                               // In [1, 2): representable {1.0, 1.25, 1.5, 1.75}.
        assert_eq!(f.quantize_value(1.1), 1.0);
        assert_eq!(f.quantize_value(1.2), 1.25);
        assert_eq!(f.quantize_value(1.6), 1.5);
        assert_eq!(f.quantize_value(1.9), 2.0); // carries into next binade
    }

    #[test]
    fn saturates_instead_of_inf() {
        let f = Minifloat::new(4, 3).unwrap();
        let m = f.max_value();
        assert!(f.quantize_value(1e30) == m);
        assert!(f.quantize_value(-1e30) == -m);
        assert_eq!(f.quantize_value(f32::INFINITY), m);
    }

    #[test]
    fn subnormals_resolve_small_values() {
        let f = Minifloat::new(4, 3).unwrap(); // bias 7, min normal 2^-6
        let min_normal = (2.0f32).powi(-6);
        // Smallest subnormal is 2^-6 / 8 = 2^-9.
        let sub = (2.0f32).powi(-9);
        assert_eq!(f.quantize_value(sub), sub);
        assert_eq!(f.quantize_value(sub * 0.4), 0.0); // below half a step
        assert_eq!(f.quantize_value(min_normal), min_normal);
    }

    #[test]
    fn binary32_geometry_is_near_lossless() {
        let f = Minifloat::new(8, 23).unwrap();
        for &x in &[0.1f32, -3.75, 123456.78, 1e-20] {
            assert_eq!(f.quantize_value(x), x);
        }
    }

    #[test]
    fn zero_and_nan_map_to_zero() {
        let f = Minifloat::new(5, 10).unwrap();
        assert_eq!(f.quantize_value(0.0), 0.0);
        assert_eq!(f.quantize_value(f32::NAN), 0.0);
    }

    #[test]
    fn bits_counts_all_fields() {
        assert_eq!(Minifloat::new(5, 10).unwrap().bits(), 16);
        assert_eq!(Minifloat::new(8, 23).unwrap().bits(), 32);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Minifloat::new(0, 10).is_err());
        assert!(Minifloat::new(9, 10).is_err());
        assert!(Minifloat::new(5, 24).is_err());
    }

    #[test]
    fn idempotent_on_grid() {
        let f = Minifloat::new(4, 3).unwrap();
        for i in -40..40 {
            let x = i as f32 * 0.37;
            let once = f.quantize_value(x);
            assert_eq!(f.quantize_value(once), once, "x={x}");
        }
    }
}
