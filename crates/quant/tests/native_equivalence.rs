//! Bit-identity property tests for the native quantized kernels.
//!
//! For every packable `Precision` in the paper's Table III sweep these
//! suites drive [`qnn_quant::packed::matmul_on_grid`] — the exact dispatch
//! entry the layers call — against a sequential-f32 reference dot product
//! (the simulated GEMM's documented accumulation order) and demand **bit
//! equality**, not closeness. Each suite runs ≥256 seeded cases and the
//! whole body repeats at 1 and 4 worker threads, since the integer kernels
//! must be invariant to how rows are partitioned.
//!
//! The suites also pin the *honesty* of the certificate: formats or
//! operands the kernels cannot compute exactly (fixed32, rail-magnitude
//! fixed16 products, non-power-of-two binary scales, `-0.0` activations)
//! must be declined — `matmul_on_grid` returns `false` / `pack` returns
//! `None` — rather than computed approximately.

use qnn_quant::packed::{
    dot_exact, dot_exact_shift_add, matmul_on_grid, matmul_on_grid_fused, Epilogue, PackedWeights,
};
use qnn_quant::{Binary, BitCodec, Fixed, PowerOfTwo, Quantizer};
use qnn_tensor::par;
use qnn_tensor::rng::{derive_seed, seeded, Rng};

const CASES: u64 = 256;

/// Runs `f` for `CASES` seeds at 1 and 4 worker threads, restoring the
/// thread default afterwards (panic-safe via a drop guard).
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            par::set_threads(None);
        }
    }
    let _restore = Restore;
    for threads in [1usize, 4] {
        par::set_threads(Some(threads));
        for case in 0..CASES {
            let mut rng = seeded(derive_seed(suite_seed, case));
            f(&mut rng);
        }
    }
}

/// The simulated path's dot product: one f32 accumulator per output,
/// ascending-k, matching `gemm_nt`'s bit-exactness contract. `acts` is
/// `m×k` row-major, or `k×m` when `transposed` (the im2col layout).
fn reference_nt(
    m: usize,
    k: usize,
    n: usize,
    acts: &[f32],
    transposed: bool,
    weights: &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                let a = if transposed {
                    acts[kk * m + i]
                } else {
                    acts[i * k + kk]
                };
                acc += a * weights[j * k + kk];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn assert_bits_eq(native: &[f32], reference: &[f32], ctx: &str) {
    assert_eq!(native.len(), reference.len(), "{ctx}: length mismatch");
    for (i, (a, b)) in native.iter().zip(reference.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: out[{i}] native {a} ({:#010x}) != simulated {b} ({:#010x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

fn small_dims(rng: &mut Rng) -> (usize, usize, usize) {
    (
        rng.gen_range(1usize..6),
        rng.gen_range(1usize..48),
        rng.gen_range(1usize..6),
    )
}

/// On-grid fixed-point values with raw magnitude below `max_raw`
/// (clamped to the word's rails), mixing direct grid points with
/// round-tripped arbitrary floats so rounding/tie cases appear too.
fn fixed_values(rng: &mut Rng, f: &Fixed, len: usize, max_raw: i64) -> Vec<f32> {
    let rail = (1i64 << (f.word_bits() - 1)) - 1;
    let hi = max_raw.min(rail);
    let lo = -(max_raw.min(rail + 1));
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.75) {
                f.decode(rng.gen_range(lo..hi + 1))
            } else {
                // Round an arbitrary float onto the grid; covers ties and
                // saturation (quantize clamps to the rails).
                let span = f.decode(hi.max(1)) * 2.0;
                f.quantize_value(rng.gen_range(-span..span))
            }
        })
        .collect()
}

fn run_native(
    codec: &BitCodec,
    acts: &[f32],
    m: usize,
    k: usize,
    transposed: bool,
    plan: &PackedWeights,
) -> Option<Vec<f32>> {
    let mut out = vec![f32::NAN; m * plan.rows()];
    matmul_on_grid(codec, acts, m, k, transposed, plan, &mut out).then_some(out)
}

#[test]
fn fixed4_and_fixed8_native_bit_identical() {
    // Table III rows Fixed-Point (4,4) and (8,8): full raw range including
    // the rails — the certificate always holds at these widths and k ≤ 48,
    // so the native path must both fire and agree bit-for-bit.
    cases(0x4e1, |rng| {
        let bits = if rng.gen_bool(0.5) { 4u32 } else { 8 };
        let f = Fixed::new(bits, rng.gen_range(-1i32..6)).unwrap();
        let codec = BitCodec::Fixed(f);
        let (m, k, n) = small_dims(rng);
        let transposed = rng.gen_bool(0.5);
        let acts = fixed_values(rng, &f, m * k, i64::MAX);
        let weights = fixed_values(rng, &f, n * k, i64::MAX);
        let plan = PackedWeights::pack(&codec, n, k, &weights)
            .expect("fixed4/8 weights on the grid must pack");
        let native = run_native(&codec, &acts, m, k, transposed, &plan)
            .expect("certificate must hold for fixed4/8 at small k");
        let reference = reference_nt(m, k, n, &acts, transposed, &weights);
        assert_bits_eq(&native, &reference, &format!("fixed{bits}"));
    });
}

#[test]
fn fixed16_native_when_certified_falls_back_at_rails() {
    // Table III row Fixed-Point (16,16). Raw magnitudes ≤ 256 keep
    // |a|·|w|·k ≤ 2^16·k under the 2^24 certificate for k ≤ 48, so the
    // native path must fire; rail-magnitude products (≈2^30 each) cannot
    // be certified and must be declined, not computed.
    cases(0x4e2, |rng| {
        let f = Fixed::new(16, rng.gen_range(4i32..12)).unwrap();
        let codec = BitCodec::Fixed(f);
        let (m, k, n) = small_dims(rng);
        let acts = fixed_values(rng, &f, m * k, 256);
        let weights = fixed_values(rng, &f, n * k, 256);
        let plan = PackedWeights::pack(&codec, n, k, &weights).expect("fixed16 must pack");
        let native = run_native(&codec, &acts, m, k, false, &plan)
            .expect("certificate must hold for small fixed16 raws");
        let reference = reference_nt(m, k, n, &acts, false, &weights);
        assert_bits_eq(&native, &reference, "fixed16");

        // Rails on both sides: 32767² ≈ 2^30 > 2^24 → honest fallback.
        let rail = f.decode(32767);
        let acts_rail = vec![rail; m * k];
        let weights_rail = vec![-rail; n * k];
        let plan_rail =
            PackedWeights::pack(&codec, n, k, &weights_rail).expect("rail weights still pack");
        assert!(
            run_native(&codec, &acts_rail, m, k, false, &plan_rail).is_none(),
            "fixed16 rail products exceed the certificate and must fall back"
        );
    });
}

#[test]
fn fixed32_is_never_packed() {
    // Table III row Fixed-Point (32,32): products need up to 64 bits of
    // significand, which neither i32 accumulation nor f32 can certify —
    // the format must have no packed form at all.
    cases(0x4e3, |rng| {
        let f = Fixed::new(32, rng.gen_range(0i32..24)).unwrap();
        let codec = BitCodec::Fixed(f);
        let weights: Vec<f32> = (0..12)
            .map(|_| f.quantize_value(rng.gen_range(-4.0f32..4.0)))
            .collect();
        assert!(
            PackedWeights::pack(&codec, 3, 4, &weights).is_none(),
            "fixed32 must not pack"
        );
    });
}

#[test]
fn pow2_weights_bit_identical_or_honest() {
    // Table III row Powers of Two (6,16): pow2 weights against fixed
    // activations. A narrow exponent band keeps the certificate in range
    // (native asserted); the full 6-bit window can push the shifted
    // magnitude past 2^24, where only an honest fallback is acceptable —
    // but if the kernel does fire, bits must still match.
    cases(0x4e4, |rng| {
        let p = PowerOfTwo::new(6, rng.gen_range(-4i32..5)).unwrap();
        let wcodec = BitCodec::PowerOfTwo(p);
        let fa = Fixed::new(8, rng.gen_range(0i32..6)).unwrap();
        let acodec = BitCodec::Fixed(fa);
        let (m, k, n) = small_dims(rng);
        let transposed = rng.gen_bool(0.5);
        let narrow = rng.gen_bool(0.5);
        let top = p.max_exp();
        let low_code = if narrow {
            // Codes within 6 of the top → weight span ≤ 2^6.
            (p.max_exp() - p.min_exp() + 1 - 6).max(0) as u32 + 1
        } else {
            0
        };
        let hi_code = (top - p.min_exp()) as u32 + 1;
        let weights: Vec<f32> = (0..n * k)
            .map(|_| {
                let code = rng.gen_range(low_code..hi_code + 1);
                p.decode(rng.gen_bool(0.5), code)
            })
            .collect();
        let acts = fixed_values(rng, &fa, m * k, 64);
        let plan = PackedWeights::pack(&wcodec, n, k, &weights).expect("pow2 weights must pack");
        let reference = reference_nt(m, k, n, &acts, transposed, &weights);
        match run_native(&acodec, &acts, m, k, transposed, &plan) {
            Some(native) => assert_bits_eq(&native, &reference, "pow2"),
            None => assert!(
                !narrow,
                "narrow-band pow2 weights must pass the certificate"
            ),
        }
    });
}

#[test]
fn binary_weights_bit_identical() {
    // Table III row Binary Net (1,16): ±2^e binary weights against fixed
    // activations — always certifiable at these sizes (|w|raw = 1).
    cases(0x4e5, |rng| {
        let e = rng.gen_range(-3i32..4);
        let b = Binary::with_scale((e as f32).exp2()).unwrap();
        let wcodec = BitCodec::Binary(b);
        let fa = Fixed::new(16, rng.gen_range(4i32..10)).unwrap();
        let acodec = BitCodec::Fixed(fa);
        let (m, k, n) = small_dims(rng);
        let transposed = rng.gen_bool(0.5);
        let weights: Vec<f32> = (0..n * k).map(|_| b.decode(rng.gen_bool(0.5))).collect();
        let acts = fixed_values(rng, &fa, m * k, 256);
        let plan = PackedWeights::pack(&wcodec, n, k, &weights).expect("binary weights must pack");
        let native = run_native(&acodec, &acts, m, k, transposed, &plan)
            .expect("binary×fixed certificate must hold");
        let reference = reference_nt(m, k, n, &acts, transposed, &weights);
        assert_bits_eq(&native, &reference, "binary×fixed");
    });
}

#[test]
fn binary_binary_xnor_bit_identical() {
    // Fully binarized product: both operands ±2^e, which dispatches to the
    // XNOR+popcount plane kernel. Certificate is (1,1,k) — always exact.
    cases(0x4e6, |rng| {
        let ea = rng.gen_range(-3i32..4);
        let ew = rng.gen_range(-3i32..4);
        let ba = Binary::with_scale((ea as f32).exp2()).unwrap();
        let bw = Binary::with_scale((ew as f32).exp2()).unwrap();
        let acodec = BitCodec::Binary(ba);
        let wcodec = BitCodec::Binary(bw);
        let m = rng.gen_range(1usize..6);
        // Cross u64 plane boundaries: k up to 130.
        let k = rng.gen_range(1usize..131);
        let n = rng.gen_range(1usize..6);
        let acts: Vec<f32> = (0..m * k).map(|_| ba.decode(rng.gen_bool(0.5))).collect();
        let weights: Vec<f32> = (0..n * k).map(|_| bw.decode(rng.gen_bool(0.5))).collect();
        let plan = PackedWeights::pack(&wcodec, n, k, &weights).expect("binary weights must pack");
        let native = run_native(&acodec, &acts, m, k, false, &plan)
            .expect("binary×binary certificate must hold");
        let reference = reference_nt(m, k, n, &acts, false, &weights);
        assert_bits_eq(&native, &reference, "binary×binary");
    });
}

#[test]
fn non_pow2_binary_scale_is_rejected() {
    // A binary scale that is not a power of two cannot be folded into the
    // exponent-only requantize step; packing must refuse it.
    let b = Binary::with_scale(0.3).unwrap();
    let codec = BitCodec::Binary(b);
    let weights: Vec<f32> = (0..8).map(|i| b.decode(i % 2 == 0)).collect();
    assert!(PackedWeights::pack(&codec, 2, 4, &weights).is_none());
}

#[test]
fn negative_zero_activation_falls_back() {
    // `-0.0` is not the encoding of any fixed-point word (decode(0) is
    // `+0.0`), so the on-grid check must decline the batch even though the
    // numeric value is representable.
    let f = Fixed::new(8, 4).unwrap();
    let codec = BitCodec::Fixed(f);
    let weights: Vec<f32> = (0..8).map(|i| f.decode(i as i64 - 4)).collect();
    let plan = PackedWeights::pack(&codec, 2, 4, &weights).unwrap();
    let mut acts: Vec<f32> = (0..8).map(|i| f.decode(i as i64)).collect();
    assert!(run_native(&codec, &acts, 2, 4, false, &plan).is_some());
    acts[5] = -0.0;
    assert_eq!(acts[5], 0.0, "-0.0 compares equal but has a different bit");
    assert!(
        run_native(&codec, &acts, 2, 4, false, &plan).is_none(),
        "-0.0 activation is off-grid and must force the simulated path"
    );
}

/// Drives the fused entry against the unfused one plus explicit bias-add
/// and quantize passes — the exact computation the layers used to run as
/// three separate loops. Bit equality is required whenever the plan
/// certifies; when it declines, both entries must decline together.
#[allow(clippy::too_many_arguments)]
fn assert_fused_matches_separate(
    codec: &BitCodec,
    acts: &[f32],
    m: usize,
    k: usize,
    transposed: bool,
    plan: &PackedWeights,
    rng: &mut Rng,
    ctx: &str,
) {
    let n = plan.rows();
    let oq = Fixed::new(8, rng.gen_range(1i32..5)).unwrap();
    let bias: Vec<f32> = (0..n)
        .map(|_| oq.decode(rng.gen_range(-64i64..65)))
        .collect();
    let epi = Epilogue {
        bias: Some(&bias),
        out_quant: Some(&oq),
    };
    let mut base = vec![f32::NAN; m * n];
    let certified = matmul_on_grid(codec, acts, m, k, transposed, plan, &mut base);
    let mut fused = vec![f32::NAN; m * n];
    let fused_ok = matmul_on_grid_fused(codec, acts, m, k, transposed, plan, &epi, &mut fused);
    assert_eq!(
        certified, fused_ok,
        "{ctx}: fused and unfused entries must certify identically"
    );
    if !certified {
        return;
    }
    for i in 0..m {
        for (j, b) in bias.iter().enumerate() {
            base[i * n + j] += b;
        }
    }
    oq.quantize_slice(&mut base);
    assert_bits_eq(&fused, &base, ctx);
}

#[test]
fn fused_epilogue_matches_separate_passes_across_codecs() {
    // Every packable weight family through the fused entry: the in-kernel
    // bias + output-quantize tail must equal the historical three-pass
    // pipeline bit for bit.
    cases(0x4e8, |rng| {
        let (m, k, n) = small_dims(rng);
        let transposed = rng.gen_bool(0.5);
        match rng.gen_range(0u32..3) {
            0 => {
                let f = Fixed::new(8, rng.gen_range(-1i32..6)).unwrap();
                let codec = BitCodec::Fixed(f);
                let acts = fixed_values(rng, &f, m * k, i64::MAX);
                let weights = fixed_values(rng, &f, n * k, i64::MAX);
                let plan = PackedWeights::pack(&codec, n, k, &weights).unwrap();
                assert_fused_matches_separate(
                    &codec,
                    &acts,
                    m,
                    k,
                    transposed,
                    &plan,
                    rng,
                    "fused fixed8",
                );
            }
            1 => {
                let p = PowerOfTwo::new(6, rng.gen_range(-4i32..5)).unwrap();
                let wcodec = BitCodec::PowerOfTwo(p);
                let fa = Fixed::new(8, rng.gen_range(0i32..6)).unwrap();
                let acodec = BitCodec::Fixed(fa);
                let hi_code = (p.max_exp() - p.min_exp()) as u32 + 1;
                let weights: Vec<f32> = (0..n * k)
                    .map(|_| p.decode(rng.gen_bool(0.5), rng.gen_range(0..hi_code + 1)))
                    .collect();
                let acts = fixed_values(rng, &fa, m * k, 64);
                let plan = PackedWeights::pack(&wcodec, n, k, &weights).unwrap();
                assert_fused_matches_separate(
                    &acodec,
                    &acts,
                    m,
                    k,
                    transposed,
                    &plan,
                    rng,
                    "fused pow2",
                );
            }
            _ => {
                let b = Binary::with_scale((rng.gen_range(-3i32..4) as f32).exp2()).unwrap();
                let wcodec = BitCodec::Binary(b);
                let acodec = BitCodec::Binary(b);
                let acts: Vec<f32> = (0..m * k).map(|_| b.decode(rng.gen_bool(0.5))).collect();
                let weights: Vec<f32> = (0..n * k).map(|_| b.decode(rng.gen_bool(0.5))).collect();
                let plan = PackedWeights::pack(&wcodec, n, k, &weights).unwrap();
                assert_fused_matches_separate(
                    &acodec,
                    &acts,
                    m,
                    k,
                    transposed,
                    &plan,
                    rng,
                    "fused xnor",
                );
            }
        }
    });
}

#[test]
fn wide_span_pow2_uses_shift_add_panels_bit_identically() {
    // Spans 15..=29 have no i16 view; they must take the two-panel
    // shift-add microkernel (asserted non-vacuously) and still match the
    // f32 reference bit for bit under the extended certificate.
    cases(0x4e9, |rng| {
        let p = PowerOfTwo::new(6, rng.gen_range(-2i32..3)).unwrap();
        let wcodec = BitCodec::PowerOfTwo(p);
        let fa = Fixed::new(8, rng.gen_range(2i32..6)).unwrap();
        let acodec = BitCodec::Fixed(fa);
        let m = rng.gen_range(1usize..6);
        let k = rng.gen_range(2usize..8);
        let n = rng.gen_range(1usize..6);
        // Force the used-exponent span into the shift-add band; |a|raw ≤ 2
        // and k ≤ 7 keep `dot_exact` satisfied through its conservative
        // activation bound ((2+1) · 2^19 · 7 < 2^24).
        let span = rng.gen_range(15u32..20);
        let hi_code = (p.max_exp() - p.min_exp()) as u32 + 1;
        let lo_code = hi_code - span;
        let mut weights: Vec<f32> = (0..n * k)
            .map(|_| {
                let code = rng.gen_range(lo_code..hi_code + 1);
                p.decode(rng.gen_bool(0.5), code)
            })
            .collect();
        weights[0] = p.decode(false, lo_code);
        weights[n * k - 1] = p.decode(true, hi_code);
        let acts = fixed_values(rng, &fa, m * k, 1);
        let plan = PackedWeights::pack(&wcodec, n, k, &weights).expect("wide pow2 must pack");
        match &plan {
            PackedWeights::Pow2(pp) => {
                assert!(pp.words16().is_none(), "span {span} must not fit i16");
                assert!(
                    pp.shift_add_panels().is_some(),
                    "span {span} must build shift-add panels"
                );
            }
            _ => panic!("pow2 weights must pack as Pow2"),
        }
        let native = run_native(&acodec, &acts, m, k, false, &plan)
            .expect("|a|raw ≤ 1 keeps the wide-span certificate");
        let reference = reference_nt(m, k, n, &acts, false, &weights);
        assert_bits_eq(&native, &reference, &format!("shift-add span {span}"));
    });
}

#[test]
fn fused_epilogue_rejects_mismatched_bias() {
    // A bias whose length disagrees with the output width must make the
    // fused entry decline (the layers treat `false` as "run simulated").
    let f = Fixed::new(8, 4).unwrap();
    let codec = BitCodec::Fixed(f);
    let weights: Vec<f32> = (0..8).map(|i| f.decode(i as i64 - 4)).collect();
    let plan = PackedWeights::pack(&codec, 2, 4, &weights).unwrap();
    let acts: Vec<f32> = (0..8).map(|i| f.decode(i as i64)).collect();
    let bias = vec![0.5f32; 3]; // n is 2
    let epi = Epilogue {
        bias: Some(&bias),
        out_quant: None,
    };
    let mut out = vec![0.0f32; 4];
    assert!(!matmul_on_grid_fused(
        &codec, &acts, 2, 4, false, &plan, &epi, &mut out
    ));
}

#[test]
fn shift_add_certificate_extends_dot_exact() {
    // `dot_exact_shift_add` must imply `dot_exact` and additionally bound
    // the base shift and the down-shifted residual magnitude.
    assert!(dot_exact(1, 1 << 20, 8, -10));
    assert!(dot_exact_shift_add(1, 1 << 20, 8, -10, 15));
    // Rejections unique to the shift-add form:
    assert!(
        !dot_exact_shift_add(1, 1 << 20, 8, -10, 31),
        "a 31-bit base shift overflows the i32 accumulator recombination"
    );
    assert!(
        !dot_exact_shift_add(1, 1 << 20, 8, -10, 4),
        "residual 2^16 after a 4-bit shift exceeds the i16 panel word"
    );
    // The base certificate still gates: same operands, k too large.
    assert!(!dot_exact(1 << 8, 1 << 20, 8, -10));
    assert!(!dot_exact_shift_add(1 << 8, 1 << 20, 8, -10, 15));
}

#[test]
fn float32_and_minifloat_have_no_packed_form() {
    // The remaining Table III row (Floating-Point (32,32)) and the
    // minifloat codec never dispatch natively.
    let weights = [0.5f32, -0.25, 1.0, 0.0];
    assert!(PackedWeights::pack(&BitCodec::Float32, 2, 2, &weights).is_none());
    let mf = qnn_quant::Minifloat::new(4, 3).unwrap();
    let q: &dyn Quantizer = &mf;
    let snapped: Vec<f32> = weights.iter().map(|&x| q.quantize_value(x)).collect();
    assert!(PackedWeights::pack(&BitCodec::Minifloat(mf), 2, 2, &snapped).is_none());
}
