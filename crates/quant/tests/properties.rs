//! Property tests for the numeric formats, run as deterministic seeded
//! loops (≥256 cases each).
//!
//! The invariants every format must satisfy:
//! 1. **Idempotence** — `q(q(x)) == q(x)`.
//! 2. **Monotonicity** — `x <= y ⇒ q(x) <= q(y)`.
//! 3. **Boundedness** — `min_value() <= q(x) <= max_value()`.
//! 4. **Grid membership** — `q(x)` round-trips through the bit encoding.
//! 5. **Error bound** — within the unsaturated range, `|q(x) - x|` is at
//!    most half a step (fixed point) or half a binade gap (pow2).

use qnn_quant::{calibrate, Binary, Fixed, Minifloat, PowerOfTwo, Precision, Quantizer};
use qnn_tensor::rng::{derive_seed, seeded, Rng};
use qnn_tensor::{Shape, Tensor};

const CASES: u64 = 256;

fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

fn fixed_format(rng: &mut Rng) -> Fixed {
    Fixed::new(rng.gen_range(2u32..=32), rng.gen_range(-8i32..24)).unwrap()
}

fn pow2_format(rng: &mut Rng) -> PowerOfTwo {
    // Width 8 with a low window top would push the window bottom past f32
    // range (rejected by the constructor), so keep widths ≤ 6 here.
    PowerOfTwo::new(rng.gen_range(2u32..=6), rng.gen_range(-8i32..8)).unwrap()
}

fn minifloat_format(rng: &mut Rng) -> Minifloat {
    Minifloat::new(rng.gen_range(1u32..=8), rng.gen_range(0u32..=23)).unwrap()
}

/// Arbitrary f32 bit pattern: includes ±0, subnormals, infinities and NaN,
/// like a property framework's "any float" generator.
fn any_f32(rng: &mut Rng) -> f32 {
    f32::from_bits(rng.next_u32())
}

/// A normal (non-zero, non-subnormal, finite) f32.
fn normal_f32(rng: &mut Rng) -> f32 {
    let sign = u32::from(rng.gen_bool(0.5)) << 31;
    let exp = rng.gen_range(1u32..255) << 23;
    let man = rng.next_u32() & 0x007F_FFFF;
    f32::from_bits(sign | exp | man)
}

#[test]
fn fixed_idempotent() {
    cases(0x11, |rng| {
        let q = fixed_format(rng);
        let x = rng.gen_range(-1e6f32..1e6);
        let once = q.quantize_value(x);
        assert_eq!(q.quantize_value(once), once);
    });
}

#[test]
fn fixed_monotone() {
    cases(0x12, |rng| {
        let q = fixed_format(rng);
        let a = rng.gen_range(-1e4f32..1e4);
        let b = rng.gen_range(-1e4f32..1e4);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(q.quantize_value(lo) <= q.quantize_value(hi));
    });
}

#[test]
fn fixed_bounded() {
    cases(0x13, |rng| {
        let q = fixed_format(rng);
        let x = any_f32(rng);
        let y = q.quantize_value(x);
        assert!(y >= q.min_value() && y <= q.max_value(), "x={x} y={y}");
    });
}

#[test]
fn fixed_error_at_most_half_step() {
    cases(0x14, |rng| {
        let q = fixed_format(rng);
        let x = rng.gen_range(-100.0f32..100.0);
        if x.abs() >= q.max_value() {
            return;
        }
        let y = q.quantize_value(x);
        assert!(
            (y - x).abs() <= q.step() * 0.5 + q.step() * 1e-3,
            "x={} y={} step={}",
            x,
            y,
            q.step()
        );
    });
}

#[test]
fn fixed_encode_decode_round_trip() {
    cases(0x15, |rng| {
        let q = fixed_format(rng);
        let x = rng.gen_range(-1e4f32..1e4);
        assert_eq!(q.decode(q.encode(x)), q.quantize_value(x));
    });
}

#[test]
fn pow2_idempotent() {
    cases(0x16, |rng| {
        let q = pow2_format(rng);
        let x = rng.gen_range(-256.0f32..256.0);
        let once = q.quantize_value(x);
        assert_eq!(q.quantize_value(once), once);
    });
}

#[test]
fn pow2_outputs_are_zero_or_signed_powers() {
    cases(0x17, |rng| {
        let q = pow2_format(rng);
        let x = rng.gen_range(-256.0f32..256.0);
        let y = q.quantize_value(x);
        if y != 0.0 {
            let l = y.abs().log2();
            assert!((l - l.round()).abs() < 1e-6, "{y} is not ±2^k");
            assert_eq!(y > 0.0, x > 0.0);
        }
    });
}

#[test]
fn pow2_bounded() {
    cases(0x18, |rng| {
        let q = pow2_format(rng);
        let x = normal_f32(rng);
        let y = q.quantize_value(x);
        assert!(y.abs() <= q.max_value());
    });
}

#[test]
fn binary_always_pm_scale() {
    cases(0x19, |rng| {
        let s = rng.gen_range(0.01f32..10.0);
        let x = any_f32(rng);
        let q = Binary::with_scale(s).unwrap();
        let y = q.quantize_value(x);
        assert!(y == s || y == -s);
    });
}

#[test]
fn minifloat_idempotent() {
    cases(0x1A, |rng| {
        let q = minifloat_format(rng);
        let x = rng.gen_range(-1e6f32..1e6);
        let once = q.quantize_value(x);
        assert_eq!(q.quantize_value(once), once);
    });
}

#[test]
fn minifloat_monotone() {
    cases(0x1B, |rng| {
        let q = minifloat_format(rng);
        let a = rng.gen_range(-1e4f32..1e4);
        let b = rng.gen_range(-1e4f32..1e4);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(q.quantize_value(lo) <= q.quantize_value(hi));
    });
}

#[test]
fn minifloat_relative_error_bounded() {
    cases(0x1C, |rng| {
        let q = minifloat_format(rng);
        let x = rng.gen_range(1e-2f32..1e2);
        // Relative-error bounds only hold in the normal range, as in IEEE.
        if !(x < q.max_value() && x >= q.min_positive_normal()) {
            return;
        }
        let y = q.quantize_value(x);
        // Relative error at most half an ulp of the mantissa width.
        let ulp = (-(q.man_bits() as f32)).exp2();
        assert!((y - x).abs() / x <= ulp, "x={x} y={y}");
    });
}

#[test]
fn calibrated_fixed_covers_sample() {
    cases(0x1D, |rng| {
        let bits = rng.gen_range(4u32..=16);
        let n = rng.gen_range(1usize..64);
        let v: Vec<f32> = (0..n).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let t = Tensor::from_vec(Shape::d1(n), v).unwrap();
        let range = calibrate::Method::MaxAbs.range_of(&[&t]);
        let q = calibrate::fixed_for_range(bits, range).unwrap();
        assert!(q.max_value() >= range * (1.0 - 1e-6));
    });
}

#[test]
fn quantize_tensor_equals_mapping_values() {
    cases(0x1E, |rng| {
        let q = Fixed::new(8, 5).unwrap();
        let n = rng.gen_range(1usize..32);
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
        let t = Tensor::from_vec(Shape::d1(n), x.clone()).unwrap();
        let qt = q.quantize(&t);
        for (i, &xi) in x.iter().enumerate() {
            assert_eq!(qt.as_slice()[i], q.quantize_value(xi));
        }
    });
}

#[test]
fn paper_sweep_quantizers_bounded_by_bits() {
    cases(0x1F, |rng| {
        let x = rng.gen_range(-8.0f32..8.0);
        for p in Precision::paper_sweep() {
            let q = p.default_quantizers().unwrap();
            let y = q.weights.quantize_value(x);
            assert!(y.is_finite());
            assert!(q.weights.bits() <= 32);
        }
    });
}

/// Every `quantize_slice` override must equal the per-value default
/// bit-for-bit — the serving stack's bit-identity contract rides on the
/// slice fast paths snapping exactly like `quantize_value`. Exercises all
/// overriding formats across random parameters, every rounding mode, and
/// arbitrary bit patterns (±0, subnormals, infinities, NaN payloads).
#[test]
fn slice_quantize_matches_scalar_bitwise() {
    use qnn_quant::RoundMode;
    cases(0x21, |rng| {
        let mode = match rng.gen_range(0u32..3) {
            0 => RoundMode::NearestAway,
            1 => RoundMode::NearestEven,
            _ => RoundMode::Floor,
        };
        let fixed =
            Fixed::with_rounding(rng.gen_range(2u32..=32), rng.gen_range(-8i32..24), mode).unwrap();
        let pow2 = pow2_format(rng);
        let binary = Binary::with_scale(rng.gen_range(0.01f32..10.0)).unwrap();
        let quants: [&dyn Quantizer; 3] = [&fixed, &pow2, &binary];
        let n = rng.gen_range(1usize..40);
        let data: Vec<f32> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    any_f32(rng)
                } else {
                    rng.gen_range(-1e4f32..1e4)
                }
            })
            .collect();
        for q in quants {
            let mut fast = data.clone();
            q.quantize_slice(&mut fast);
            for (i, &x) in data.iter().enumerate() {
                let slow = q.quantize_value(x);
                assert_eq!(
                    fast[i].to_bits(),
                    slow.to_bits(),
                    "{}: x={x:?} ({:#010x}) slice={:?} scalar={slow:?}",
                    q.describe(),
                    x.to_bits(),
                    fast[i],
                );
            }
        }
    });
}

/// The parallel fake-quantize pass must equal the serial pass bit-for-bit
/// at any thread count.
#[test]
fn parallel_quantize_matches_serial() {
    let q = Fixed::new(8, 5).unwrap();
    let mut rng = seeded(0x20);
    let data: Vec<f32> = (0..20_000).map(|_| rng.gen_range(-6.0f32..6.0)).collect();
    let t = Tensor::from_vec(Shape::d1(20_000), data).unwrap();
    let mut serial = t.clone();
    q.quantize_inplace(&mut serial);
    for workers in [1usize, 2, 4] {
        qnn_tensor::par::set_threads(Some(workers));
        let mut par = t.clone();
        qnn_quant::quantize_inplace_par(&q, &mut par);
        assert_eq!(par, serial, "workers={workers}");
    }
    qnn_tensor::par::set_threads(None);
}
