//! Property tests for the numeric formats.
//!
//! The invariants every format must satisfy:
//! 1. **Idempotence** — `q(q(x)) == q(x)`.
//! 2. **Monotonicity** — `x <= y ⇒ q(x) <= q(y)`.
//! 3. **Boundedness** — `min_value() <= q(x) <= max_value()`.
//! 4. **Grid membership** — `q(x)` round-trips through the bit encoding.
//! 5. **Error bound** — within the unsaturated range, `|q(x) - x|` is at
//!    most half a step (fixed point) or half a binade gap (pow2).

use proptest::prelude::*;
use qnn_quant::{calibrate, Binary, Fixed, Minifloat, PowerOfTwo, Precision, Quantizer};
use qnn_tensor::{Shape, Tensor};

fn fixed_format() -> impl Strategy<Value = Fixed> {
    (2u32..=32, -8i32..24).prop_map(|(w, f)| Fixed::new(w, f).unwrap())
}

fn pow2_format() -> impl Strategy<Value = PowerOfTwo> {
    // Width 8 with a low window top would push the window bottom past f32
    // range (rejected by the constructor), so keep widths ≤ 6 here.
    (2u32..=6, -8i32..8).prop_map(|(b, e)| PowerOfTwo::new(b, e).unwrap())
}

fn minifloat_format() -> impl Strategy<Value = Minifloat> {
    (1u32..=8, 0u32..=23).prop_map(|(e, m)| Minifloat::new(e, m).unwrap())
}

proptest! {
    #[test]
    fn fixed_idempotent(q in fixed_format(), x in -1e6f32..1e6) {
        let once = q.quantize_value(x);
        prop_assert_eq!(q.quantize_value(once), once);
    }

    #[test]
    fn fixed_monotone(q in fixed_format(), a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize_value(lo) <= q.quantize_value(hi));
    }

    #[test]
    fn fixed_bounded(q in fixed_format(), x in proptest::num::f32::ANY) {
        let y = q.quantize_value(x);
        prop_assert!(y >= q.min_value() && y <= q.max_value(), "y={}", y);
    }

    #[test]
    fn fixed_error_at_most_half_step(q in fixed_format(), x in -100.0f32..100.0) {
        prop_assume!(x.abs() < q.max_value());
        let y = q.quantize_value(x);
        prop_assert!((y - x).abs() <= q.step() * 0.5 + q.step() * 1e-3,
            "x={} y={} step={}", x, y, q.step());
    }

    #[test]
    fn fixed_encode_decode_round_trip(q in fixed_format(), x in -1e4f32..1e4) {
        prop_assert_eq!(q.decode(q.encode(x)), q.quantize_value(x));
    }

    #[test]
    fn pow2_idempotent(q in pow2_format(), x in -256.0f32..256.0) {
        let once = q.quantize_value(x);
        prop_assert_eq!(q.quantize_value(once), once);
    }

    #[test]
    fn pow2_outputs_are_zero_or_signed_powers(q in pow2_format(), x in -256.0f32..256.0) {
        let y = q.quantize_value(x);
        if y != 0.0 {
            let l = y.abs().log2();
            prop_assert!((l - l.round()).abs() < 1e-6, "{} is not ±2^k", y);
            prop_assert_eq!(y > 0.0, x > 0.0);
        }
    }

    #[test]
    fn pow2_bounded(q in pow2_format(), x in proptest::num::f32::NORMAL) {
        let y = q.quantize_value(x);
        prop_assert!(y.abs() <= q.max_value());
    }

    #[test]
    fn binary_always_pm_scale(s in 0.01f32..10.0, x in proptest::num::f32::ANY) {
        let q = Binary::with_scale(s).unwrap();
        let y = q.quantize_value(x);
        prop_assert!(y == s || y == -s);
    }

    #[test]
    fn minifloat_idempotent(q in minifloat_format(), x in -1e6f32..1e6) {
        let once = q.quantize_value(x);
        prop_assert_eq!(q.quantize_value(once), once);
    }

    #[test]
    fn minifloat_monotone(q in minifloat_format(), a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize_value(lo) <= q.quantize_value(hi));
    }

    #[test]
    fn minifloat_relative_error_bounded(q in minifloat_format(), x in 1e-2f32..1e2) {
        // Relative-error bounds only hold in the normal range, as in IEEE.
        prop_assume!(x < q.max_value() && x >= q.min_positive_normal());
        let y = q.quantize_value(x);
        // Relative error at most half an ulp of the mantissa width.
        let ulp = (-(q.man_bits() as f32)).exp2();
        prop_assert!((y - x).abs() / x <= ulp, "x={} y={}", x, y);
    }

    #[test]
    fn calibrated_fixed_covers_sample(bits in 4u32..=16, v in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(Shape::d1(n), v).unwrap();
        let range = calibrate::Method::MaxAbs.range_of(&[&t]);
        let q = calibrate::fixed_for_range(bits, range).unwrap();
        prop_assert!(q.max_value() >= range * (1.0 - 1e-6));
    }

    #[test]
    fn quantize_tensor_equals_mapping_values(x in proptest::collection::vec(-4.0f32..4.0, 1..32)) {
        let q = Fixed::new(8, 5).unwrap();
        let n = x.len();
        let t = Tensor::from_vec(Shape::d1(n), x.clone()).unwrap();
        let qt = q.quantize(&t);
        for (i, &xi) in x.iter().enumerate() {
            prop_assert_eq!(qt.as_slice()[i], q.quantize_value(xi));
        }
    }

    #[test]
    fn paper_sweep_quantizers_bounded_by_bits(x in -8.0f32..8.0) {
        for p in Precision::paper_sweep() {
            let q = p.default_quantizers().unwrap();
            let y = q.weights.quantize_value(x);
            prop_assert!(y.is_finite());
            prop_assert!(q.weights.bits() <= 32);
        }
    }
}
