//! Failure-injection tests: corrupted inputs must surface as reported
//! divergence or saturated values, never as panics or silent garbage.

use qnn_nn::arch::NetworkSpec;
use qnn_nn::{ActivationCalibration, Mode, Network, TrainOutcome, Trainer, TrainerConfig};
use qnn_quant::calibrate::Method;
use qnn_quant::Precision;
use qnn_tensor::{Shape, Tensor};

fn spec() -> NetworkSpec {
    NetworkSpec::new("fault", (1, 6, 6))
        .conv(3, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(3)
}

fn clean_batch(n: usize) -> Tensor {
    Tensor::from_vec(
        Shape::d4(n, 1, 6, 6),
        (0..n * 36).map(|i| ((i as f32) * 0.21).sin()).collect(),
    )
    .unwrap()
}

#[test]
fn nan_in_training_batch_reports_divergence() {
    let mut net = Network::build(&spec(), 1).unwrap();
    let mut x = clean_batch(16);
    x.as_mut_slice()[5] = f32::NAN;
    let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 2,
        batch_size: 8,
        ..TrainerConfig::default()
    })
    .unwrap();
    let report = trainer.train(&mut net, &x, &labels).unwrap();
    assert_eq!(report.outcome, TrainOutcome::Diverged);
}

#[test]
fn infinite_inputs_saturate_under_quantization() {
    let mut net = Network::build(&spec(), 2).unwrap();
    let calib = clean_batch(4);
    net.set_precision(
        Precision::fixed(8, 8),
        Method::MaxAbs,
        &calib,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    let mut x = clean_batch(2);
    x.as_mut_slice()[0] = f32::INFINITY;
    x.as_mut_slice()[40] = f32::NEG_INFINITY;
    let y = net.forward(&x, Mode::Eval).unwrap();
    assert!(
        y.as_slice().iter().all(|v| v.is_finite()),
        "quantized network must clamp infinities: {:?}",
        y.as_slice()
    );
}

#[test]
fn nan_input_at_full_precision_propagates_visibly() {
    // Without quantizers there is nothing to clamp NaN — but prediction
    // must still return (argmax of a NaN row is defined), not panic.
    let mut net = Network::build(&spec(), 3).unwrap();
    let mut x = clean_batch(1);
    x.as_mut_slice()[7] = f32::NAN;
    let preds = net.predict(&x).unwrap();
    assert_eq!(preds.len(), 1);
    assert!(preds[0] < 3);
}

#[test]
fn extreme_calibration_batch_still_yields_valid_formats() {
    // Calibrating on a batch containing huge values must produce formats
    // that cover them (saturating everything else) rather than failing.
    let mut net = Network::build(&spec(), 4).unwrap();
    let mut calib = clean_batch(4);
    calib.as_mut_slice()[0] = 3.0e4;
    net.set_precision(
        Precision::fixed(8, 8),
        Method::MaxAbs,
        &calib,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    let y = net.forward(&clean_batch(2), Mode::Eval).unwrap();
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn all_zero_batch_is_harmless() {
    let mut net = Network::build(&spec(), 5).unwrap();
    let zeros = Tensor::zeros(Shape::d4(4, 1, 6, 6));
    net.set_precision(
        Precision::binary(),
        Method::MaxAbs,
        &zeros,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    let y = net.forward(&zeros, Mode::Eval).unwrap();
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
}
