//! Property tests over random architecture specs, run as deterministic
//! seeded loops (≥256 cases each): shape propagation, parameter
//! accounting, and workload consistency must hold for any valid stack, and
//! every valid spec must build into a runnable network whose actual output
//! shape matches the spec's prediction.

use qnn_nn::arch::{LayerSpec, NetworkSpec};
use qnn_nn::{Mode, Network};
use qnn_tensor::rng::{derive_seed, seeded, Rng};
use qnn_tensor::{Shape, Tensor};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

/// A random-but-valid conv stack on a 16×16 input, ending in a dense head.
fn random_spec(rng: &mut Rng) -> NetworkSpec {
    let stages = rng.gen_range(0usize..3);
    let mut spec = NetworkSpec::new("random", (2, 16, 16));
    for _ in 0..stages {
        let oc = rng.gen_range(1usize..9);
        let k = rng.gen_range(1usize..4);
        // Pad to keep spatial size, so stacking stays valid.
        spec = spec.conv(oc, 2 * k - 1, 1, k - 1).relu();
        if rng.gen_bool(0.5) {
            spec = if rng.gen_bool(0.5) {
                spec.max_pool_ceil(2, 2)
            } else {
                spec.max_pool(2, 2)
            };
        }
    }
    spec.dense(5)
}

/// Spec-predicted output shapes match what the built network computes.
#[test]
fn spec_shapes_match_execution() {
    cases(0x30, |rng| {
        let spec = random_spec(rng);
        let seed = rng.gen_range(0u64..100);
        let summaries = spec.summaries().unwrap();
        let mut net = Network::build(&spec, seed).unwrap();
        let x = Tensor::zeros(Shape::d4(2, 2, 16, 16));
        let y = net.forward(&x, Mode::Eval).unwrap();
        let last = &summaries.last().unwrap().output;
        assert_eq!(y.shape().dims(), &[2, last.len()]);
        assert_eq!(y.shape().dim(1), 5);
    });
}

/// The network holds exactly the parameters the spec accounts for.
#[test]
fn param_accounting_matches() {
    cases(0x31, |rng| {
        let spec = random_spec(rng);
        let seed = rng.gen_range(0u64..100);
        let net = Network::build(&spec, seed).unwrap();
        assert_eq!(net.param_count(), spec.param_count());
    });
}

/// Workload totals are consistent with the spec and each layer's MACs
/// factor as neurons × fan-in.
#[test]
fn workload_consistency() {
    cases(0x32, |rng| {
        let spec = random_spec(rng);
        let wl = spec.workload().unwrap();
        assert_eq!(wl.total_macs(), spec.macs_per_image());
        assert_eq!(wl.total_weights() as usize, spec.param_count());
        for l in &wl.layers {
            if l.macs > 0 {
                assert_eq!(l.macs, l.neurons * l.synapses_per_neuron);
            }
        }
    });
}

/// Backprop runs end-to-end on any random spec and produces gradient
/// somewhere. (Individual weight tensors can legitimately receive zero
/// gradient — a dead-ReLU stage blacks out everything upstream — but
/// the final dense layer's bias always sees the loss.)
#[test]
fn backprop_reaches_the_head() {
    cases(0x33, |rng| {
        let spec = random_spec(rng);
        let seed = rng.gen_range(0u64..50);
        let mut net = Network::build(&spec, seed).unwrap();
        let x = Tensor::from_vec(
            Shape::d4(1, 2, 16, 16),
            (0..512).map(|i| ((i as f32) * 0.17).sin()).collect(),
        )
        .unwrap();
        let y = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let params = net.params();
        // Last parameter is the head's bias: dL/db = 1 per output.
        let head_bias = params.last().unwrap();
        assert!(!head_bias.decay);
        assert!(head_bias.grad.as_slice().iter().all(|&g| g == 1.0));
        let total: f32 = params
            .iter()
            .flat_map(|p| p.grad.as_slice())
            .map(|v| v.abs())
            .sum();
        assert!(total > 0.0);
    });
}

/// Degenerate specs are rejected, not mis-built.
#[test]
fn degenerate_specs_rejected() {
    assert!(NetworkSpec::new("empty", (1, 8, 8)).summaries().is_err());
    // Kernel larger than input.
    assert!(NetworkSpec::new("big-k", (1, 4, 4))
        .conv(2, 9, 1, 0)
        .summaries()
        .is_err());
    // Pooling a vector (after dense).
    let spec = NetworkSpec::new("pool-after-dense", (1, 8, 8))
        .dense(10)
        .max_pool(2, 2);
    assert!(spec.summaries().is_err());
    assert!(Network::build(&spec, 1).is_err());
}

/// LayerSpec::has_params agrees with the built layers.
#[test]
fn has_params_agrees_with_layers() {
    assert!(LayerSpec::Conv {
        out_channels: 1,
        kernel: 1,
        stride: 1,
        pad: 0
    }
    .has_params());
    assert!(LayerSpec::Dense { units: 1 }.has_params());
    assert!(!LayerSpec::Relu.has_params());
    assert!(!LayerSpec::MaxPool {
        kernel: 2,
        stride: 2,
        ceil: false
    }
    .has_params());
}
