//! Cross-module training tests: gradient correctness through whole
//! networks, QAT behaviour, and the shadow-weight mechanism.

use qnn_nn::arch::NetworkSpec;
use qnn_nn::loss::softmax_cross_entropy;
use qnn_nn::{Mode, Network, QatConfig, Sgd, TrainOutcome, Trainer, TrainerConfig};
use qnn_quant::Precision;
use qnn_tensor::rng::{self, derive_seed, seeded, Rng};
use qnn_tensor::{Shape, Tensor};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

fn conv_spec() -> NetworkSpec {
    NetworkSpec::new("conv-net", (1, 8, 8))
        .conv(4, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(6, 3, 1, 1)
        .relu()
        .avg_pool(2, 2)
        .dense(3)
}

fn random_batch(n: usize, seed: u64) -> Tensor {
    let mut r = rng::seeded(seed);
    Tensor::from_vec(
        Shape::d4(n, 1, 8, 8),
        (0..n * 64).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
    )
    .unwrap()
}

/// Numerical gradient check through an entire CNN: perturb a handful of
/// parameters and compare loss deltas against backprop.
#[test]
fn full_network_gradient_check() {
    let mut net = Network::build(&conv_spec(), 11).unwrap();
    let x = random_batch(2, 5);
    let labels = [0usize, 2];
    let logits = net.forward(&x, Mode::Train).unwrap();
    let out = softmax_cross_entropy(&logits, &labels).unwrap();
    net.backward(&out.grad).unwrap();
    // Collect analytic grads for spot-checked parameters.
    let spots: Vec<(usize, usize)> = vec![(0, 0), (0, 7), (2, 3), (4, 10), (5, 1)];
    let analytic: Vec<f32> = {
        let params = net.params();
        spots
            .iter()
            .map(|&(pi, ei)| params[pi].grad.as_slice()[ei])
            .collect()
    };
    let eps = 1e-2;
    for (k, &(pi, ei)) in spots.iter().enumerate() {
        let orig = net.params()[pi].value.as_slice()[ei];
        {
            net.params_mut()[pi].value.as_mut_slice()[ei] = orig + eps;
        }
        let lp = {
            let l = net.forward(&x, Mode::Eval).unwrap();
            softmax_cross_entropy(&l, &labels).unwrap().loss
        };
        {
            net.params_mut()[pi].value.as_mut_slice()[ei] = orig - eps;
        }
        let lm = {
            let l = net.forward(&x, Mode::Eval).unwrap();
            softmax_cross_entropy(&l, &labels).unwrap().loss
        };
        {
            net.params_mut()[pi].value.as_mut_slice()[ei] = orig;
        }
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic[k]).abs() < 2e-2 * (1.0 + numeric.abs()),
            "param {pi}[{ei}]: numeric={numeric} analytic={}",
            analytic[k]
        );
    }
}

/// A tiny two-class image problem the whole pipeline must solve at several
/// precisions (the qualitative heart of Table IV).
fn two_class_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut r = rng::seeded(seed);
    let mut data = Vec::with_capacity(n * 64);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = r.gen_range(0..2usize);
        for row in 0..8i32 {
            for col in 0..8i32 {
                // Class 0: bright diagonal band; class 1: bright anti-diagonal.
                let on = if class == 0 {
                    (row - col).abs() <= 1
                } else {
                    (row + col - 7).abs() <= 1
                };
                let v = if on { 0.9 } else { 0.05 } + r.gen_range(-0.08f32..0.08);
                data.push(v);
            }
        }
        labels.push(class);
    }
    (
        Tensor::from_vec(Shape::d4(n, 1, 8, 8), data).unwrap(),
        labels,
    )
}

fn two_class_spec() -> NetworkSpec {
    NetworkSpec::new("2class", (1, 8, 8))
        .conv(4, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(2)
}

#[test]
fn fp32_then_qat_precision_ladder() {
    let (x, y) = two_class_data(160, 21);
    let trainer = Trainer::new(TrainerConfig {
        epochs: 8,
        batch_size: 16,
        lr: 0.08,
        ..TrainerConfig::default()
    })
    .unwrap();
    let mut net = Network::build(&two_class_spec(), 33).unwrap();
    let report = trainer.train(&mut net, &x, &y).unwrap();
    assert_eq!(report.outcome, TrainOutcome::Converged);
    let fp = trainer.evaluate(&mut net, &x, &y).unwrap();
    assert!(fp > 0.95, "FP32 accuracy {fp}");
    let state = net.state_dict();

    // 16- and 8-bit QAT should stay within a few points of FP32.
    for precision in [Precision::fixed(16, 16), Precision::fixed(8, 8)] {
        let mut qnet = Network::build(&two_class_spec(), 33).unwrap();
        qnet.load_state(&state).unwrap();
        let r = trainer
            .train_qat(&mut qnet, &QatConfig::new(precision), &x, &y, 32)
            .unwrap();
        assert_eq!(r.outcome, TrainOutcome::Converged, "{}", precision.label());
        let acc = trainer.evaluate(&mut qnet, &x, &y).unwrap();
        assert!(
            acc >= fp - 0.08,
            "{}: accuracy {acc} vs FP {fp}",
            precision.label()
        );
    }
}

#[test]
fn binary_qat_trains_on_easy_problem() {
    let (x, y) = two_class_data(160, 22);
    let trainer = Trainer::new(TrainerConfig {
        epochs: 10,
        batch_size: 16,
        lr: 0.05,
        ..TrainerConfig::default()
    })
    .unwrap();
    let mut net = Network::build(&two_class_spec(), 35).unwrap();
    trainer.train(&mut net, &x, &y).unwrap();
    let r = trainer
        .train_qat(&mut net, &QatConfig::new(Precision::binary()), &x, &y, 32)
        .unwrap();
    // The MNIST-difficulty analogue: binary should still converge
    // (paper: 99.40% on MNIST with (1,16)).
    assert_eq!(r.outcome, TrainOutcome::Converged);
    let acc = trainer.evaluate(&mut net, &x, &y).unwrap();
    assert!(acc > 0.8, "binary accuracy {acc}");
}

#[test]
fn shadow_weights_stay_full_precision_under_qat() {
    let (x, y) = two_class_data(64, 23);
    let trainer = Trainer::new(TrainerConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainerConfig::default()
    })
    .unwrap();
    let mut net = Network::build(&two_class_spec(), 1).unwrap();
    trainer
        .train_qat(&mut net, &QatConfig::new(Precision::binary()), &x, &y, 16)
        .unwrap();
    // Shadow weights must NOT all be ±1 — they carry sub-quantum state.
    let params = net.params();
    let w = params[0].value.as_slice();
    assert!(w.iter().any(|&v| v != 1.0 && v != -1.0));
}

/// SGD with any sane LR strictly decreases loss on a fixed batch for a
/// freshly initialized network (single full-batch step).
#[test]
fn single_step_decreases_batch_loss() {
    cases(0x40, |rng| {
        let seed = rng.gen_range(0u64..500);
        let lr = rng.gen_range(0.005f32..0.05);
        let mut net = Network::build(&two_class_spec(), seed).unwrap();
        let (x, y) = two_class_data(32, seed.wrapping_add(1));
        let logits = net.forward(&x, Mode::Train).unwrap();
        let before = softmax_cross_entropy(&logits, &y).unwrap();
        net.backward(&before.grad).unwrap();
        Sgd::new(lr).step(&mut net);
        let logits = net.forward(&x, Mode::Eval).unwrap();
        let after = softmax_cross_entropy(&logits, &y).unwrap();
        assert!(
            after.loss <= before.loss + 1e-4,
            "loss rose {} -> {}",
            before.loss,
            after.loss
        );
    });
}

/// Quantized forward equals FP forward when the word is wide (32-bit
/// fixed ≈ float for these magnitudes).
#[test]
fn fixed32_is_nearly_transparent() {
    cases(0x41, |rng| {
        let seed = rng.gen_range(0u64..100);
        let mut net = Network::build(&two_class_spec(), seed).unwrap();
        let x = random_batch(2, seed);
        let y_fp = net.forward(&x, Mode::Eval).unwrap();
        net.set_precision(
            Precision::fixed(32, 32),
            qnn_quant::calibrate::Method::MaxAbs,
            &x,
            qnn_nn::ActivationCalibration::PerLayer,
        )
        .unwrap();
        let y_q = net.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y_fp.as_slice().iter().zip(y_q.as_slice()) {
            assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    });
}
