//! End-to-end bit-identity tests for the native quantized fast path.
//!
//! The property suites in `qnn-quant` pin `matmul_on_grid` against a
//! reference dot product; these tests pin the *whole* inference stack: a
//! LeNet-style conv/pool/dense network under every Table III precision
//! must produce bit-identical logits with native dispatch forced off and
//! forced on, at 1 and 4 worker threads. A trace assertion then confirms
//! the fast path actually runs for the narrow fixed formats (so the
//! equality isn't vacuous), and a weight-mutation test confirms the packed
//! plan cache notices changed bits.

use qnn_nn::arch::NetworkSpec;
use qnn_nn::{set_native, ActivationCalibration, Mode, Network};
use qnn_quant::{calibrate::Method, Precision};
use qnn_tensor::rng::{derive_seed, seeded};
use qnn_tensor::{par, Shape, Tensor};

/// Restores global toggles when a test body panics.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        set_native(None);
        par::set_threads(None);
    }
}

fn lenet_spec() -> NetworkSpec {
    NetworkSpec::new("lenet-8", (1, 8, 8))
        .conv(6, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(10, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(3)
}

fn batch(n: usize, seed: u64) -> Tensor {
    let mut r = seeded(seed);
    let data: Vec<f32> = (0..n * 64).map(|_| r.gen_range(-1.0f32..1.0)).collect();
    Tensor::from_vec(Shape::d4(n, 1, 8, 8), data).unwrap()
}

/// Forward `x` through a calibrated net twice — native forced off, then
/// forced on — and assert the logits agree bit for bit.
fn assert_paths_agree(net: &mut Network, x: &Tensor, ctx: &str) {
    set_native(Some(false));
    let simulated = net.forward(x, Mode::Eval).unwrap();
    set_native(Some(true));
    let native = net.forward(x, Mode::Eval).unwrap();
    assert_eq!(simulated.shape(), native.shape(), "{ctx}: shape mismatch");
    for (i, (a, b)) in simulated
        .as_slice()
        .iter()
        .zip(native.as_slice().iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: logit[{i}] simulated {a} != native {b}"
        );
    }
}

#[test]
fn every_sweep_precision_is_bit_identical_across_paths() {
    let _restore = Restore;
    for precision in Precision::paper_sweep() {
        for seed in 0..3u64 {
            let mut net = Network::build(&lenet_spec(), derive_seed(0xd15, seed)).unwrap();
            let calib = batch(8, derive_seed(0xca1, seed));
            net.set_precision(
                precision,
                Method::MaxAbs,
                &calib,
                ActivationCalibration::PerLayer,
            )
            .unwrap();
            let x = batch(4, derive_seed(0xe7a, seed));
            for threads in [1usize, 4] {
                par::set_threads(Some(threads));
                assert_paths_agree(&mut net, &x, &format!("{precision} @ {threads}t"));
            }
        }
    }
}

#[test]
fn narrow_fixed_formats_actually_dispatch_native() {
    // Bit equality alone would hold vacuously if the fast path never
    // fired; the trace counters prove it carries real forward MACs.
    let _restore = Restore;
    par::set_threads(Some(1));
    let mut net = Network::build(&lenet_spec(), 11).unwrap();
    let calib = batch(8, 21);
    net.set_precision(
        Precision::fixed(4, 4),
        Method::MaxAbs,
        &calib,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    set_native(Some(true));
    qnn_trace::start();
    net.forward(&batch(4, 31), Mode::Eval).unwrap();
    let trace = qnn_trace::stop();
    let native = trace
        .counters
        .get("nn.fwd.flops.native")
        .copied()
        .unwrap_or(0);
    assert!(
        native > 0,
        "fixed(4,4) inference must route MACs through the native kernels, got {:?}",
        trace.counters
    );
}

#[test]
fn fused_output_quantizer_engages_and_matches_separate_pass() {
    // The fused epilogue (bias + output-activation snap inside the kernel
    // tail) must actually engage — `output_quant_applied` reports it — and
    // produce exactly what the unfused route produces: simulated GEMM,
    // bias loop, then a separate whole-tensor quantize.
    use qnn_nn::layers::{Dense, Layer, QuantizerHandle};
    use qnn_quant::{quantize_inplace_par, Fixed};
    use std::sync::Arc;

    let _restore = Restore;
    par::set_threads(Some(1));
    let f = Fixed::new(8, 6).unwrap();
    let q: QuantizerHandle = Arc::new(f);
    let mut l = Dense::new(16, 8, 42);
    l.set_weight_quantizer(Some(q.clone()));
    l.set_input_quantizer(Some(q.clone()));
    l.set_output_quantizer(Some(q.clone()));
    let mut r = seeded(51);
    let data: Vec<f32> = (0..4 * 16).map(|_| r.gen_range(-0.9f32..0.9)).collect();
    let x = q.quantize(&Tensor::from_vec(Shape::d2(4, 16), data).unwrap());

    set_native(Some(true));
    let fused = l.forward(&x, Mode::Eval).unwrap();
    assert!(
        l.output_quant_applied(),
        "fixed(8,6) dense must fuse the output quantizer"
    );
    set_native(Some(false));
    let mut reference = l.forward(&x, Mode::Eval).unwrap();
    assert!(!l.output_quant_applied());
    quantize_inplace_par(q.as_ref(), &mut reference);
    for (i, (a, b)) in fused
        .as_slice()
        .iter()
        .zip(reference.as_slice().iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "out[{i}] fused {a} != ref {b}");
    }
}

#[test]
fn tracing_disables_quant_fusion_but_not_dispatch() {
    // Under an active trace the layers must keep the separate quantize
    // pass (it carries per-pass telemetry) while still running natively.
    let _restore = Restore;
    par::set_threads(Some(1));
    let mut net = Network::build(&lenet_spec(), 19).unwrap();
    let calib = batch(8, 29);
    net.set_precision(
        Precision::fixed(4, 4),
        Method::MaxAbs,
        &calib,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    let x = batch(4, 39);
    set_native(Some(true));
    let untraced = net.forward(&x, Mode::Eval).unwrap();
    qnn_trace::start();
    let traced = net.forward(&x, Mode::Eval).unwrap();
    let trace = qnn_trace::stop();
    assert!(trace.counters.get("nn.fwd.flops.native").copied() > Some(0));
    for (a, b) in untraced.as_slice().iter().zip(traced.as_slice().iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "traced forward must not drift");
    }
}

#[test]
fn train_mode_and_cleared_precision_stay_simulated() {
    let _restore = Restore;
    let mut net = Network::build(&lenet_spec(), 13).unwrap();
    let calib = batch(8, 23);
    net.set_precision(
        Precision::fixed(8, 8),
        Method::MaxAbs,
        &calib,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    set_native(Some(true));
    // Train-mode forward must never take the native path (backward needs
    // the simulated caches and STE semantics).
    qnn_trace::start();
    net.forward(&batch(2, 33), Mode::Train).unwrap();
    let train_trace = qnn_trace::stop();
    assert_eq!(
        train_trace.counters.get("nn.fwd.flops.native"),
        None,
        "Train mode must not dispatch natively"
    );
    // A cleared network has no quantizers, so Eval stays simulated too.
    net.clear_precision();
    qnn_trace::start();
    net.forward(&batch(2, 33), Mode::Eval).unwrap();
    let clear_trace = qnn_trace::stop();
    assert_eq!(
        clear_trace.counters.get("nn.fwd.flops.native"),
        None,
        "full-precision inference must not dispatch natively"
    );
}

#[test]
fn weight_mutation_invalidates_packed_plans() {
    // After loading different weights the cached packs must be rebuilt —
    // both paths have to agree on the *new* weights, not the packed old
    // ones. (Recalibration is not required for bit-identity: the packers
    // re-verify the quantized weights on-grid either way.)
    let _restore = Restore;
    par::set_threads(Some(1));
    let mut net = Network::build(&lenet_spec(), 17).unwrap();
    let donor = Network::build(&lenet_spec(), 18).unwrap();
    let calib = batch(8, 27);
    net.set_precision(
        Precision::fixed(4, 4),
        Method::MaxAbs,
        &calib,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    let x = batch(4, 37);
    assert_paths_agree(&mut net, &x, "before mutation");
    net.load_state(&donor.state_dict()).unwrap();
    assert_paths_agree(&mut net, &x, "after mutation");
}
