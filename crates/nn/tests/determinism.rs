//! Thread-count determinism regression tests.
//!
//! The parallel compute core (blocked GEMM, threaded conv, parallel
//! fake-quantize) promises *bit-identical* results at any worker count.
//! These tests pin that promise at the highest level available: a full
//! quantization-aware training epoch must produce the same losses and the
//! same weights — to the last bit — whether it runs on one thread or four.

use qnn_nn::arch::NetworkSpec;
use qnn_nn::{Mode, Network, QatConfig, Trainer, TrainerConfig};
use qnn_quant::Precision;
use qnn_tensor::rng::{derive_seed, seeded};
use qnn_tensor::{par, Shape, Tensor};

/// A LeNet-style stack scaled to an 8×8 canvas: conv/pool/conv/pool/dense,
/// the same shape family as the paper's Table I networks.
fn lenet_spec() -> NetworkSpec {
    NetworkSpec::new("lenet-8", (1, 8, 8))
        .conv(6, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(10, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(3)
}

fn three_class_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut r = seeded(seed);
    let mut data = Vec::with_capacity(n * 64);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = r.gen_range(0usize..3);
        for row in 0..8i32 {
            for col in 0..8i32 {
                let on = match class {
                    0 => (row - col).abs() <= 1,
                    1 => (row + col - 7).abs() <= 1,
                    _ => (row - 4).abs() <= 1,
                };
                let v = if on { 0.9 } else { 0.05 } + r.gen_range(-0.08f32..0.08);
                data.push(v);
            }
        }
        labels.push(class);
    }
    (
        Tensor::from_vec(Shape::d4(n, 1, 8, 8), data).unwrap(),
        labels,
    )
}

/// Runs one epoch of 8-bit QAT at the given worker count and returns the
/// epoch losses and final weights.
fn qat_epoch(threads: usize) -> (Vec<f32>, Vec<Tensor>) {
    par::set_threads(Some(threads));
    let (x, y) = three_class_data(96, 7);
    let trainer = Trainer::new(TrainerConfig {
        epochs: 1,
        batch_size: 16,
        lr: 0.05,
        ..TrainerConfig::default()
    })
    .unwrap();
    let mut net = Network::build(&lenet_spec(), 13).unwrap();
    let report = trainer
        .train_qat(
            &mut net,
            &QatConfig::new(Precision::fixed(8, 8)),
            &x,
            &y,
            32,
        )
        .unwrap();
    let state = net.state_dict();
    par::set_threads(None);
    (report.epoch_losses, state)
}

/// One epoch of LeNet-style QAT is bit-identical at 1 and 4 threads:
/// same per-epoch losses, same final weights.
#[test]
fn qat_epoch_bit_identical_across_thread_counts() {
    let (loss_1t, state_1t) = qat_epoch(1);
    let (loss_4t, state_4t) = qat_epoch(4);
    assert_eq!(loss_1t, loss_4t, "epoch losses diverged across threads");
    assert_eq!(state_1t.len(), state_4t.len());
    for (i, (a, b)) in state_1t.iter().zip(&state_4t).enumerate() {
        assert_eq!(a, b, "parameter tensor {i} diverged across threads");
    }
}

/// Inference on a trained quantized network is likewise thread-invariant.
#[test]
fn quantized_inference_thread_invariant() {
    let (x, _) = three_class_data(24, 3);
    let run = |threads: usize| {
        par::set_threads(Some(threads));
        let mut net = Network::build(&lenet_spec(), 5).unwrap();
        net.set_precision(
            Precision::fixed(8, 8),
            qnn_quant::calibrate::Method::MaxAbs,
            &x,
            qnn_nn::ActivationCalibration::PerLayer,
        )
        .unwrap();
        let y = net.forward(&x, Mode::Eval).unwrap();
        par::set_threads(None);
        y
    };
    let y1 = run(1);
    for t in [2usize, 3, 4] {
        assert_eq!(run(t), y1, "logits diverged at {t} threads");
    }
}

/// The blocked GEMM matches the retained naive kernel bit-for-bit on a
/// spread of random shapes (also covered in qnn-tensor's own suite; this
/// placement keeps the end-to-end determinism story in one file).
#[test]
fn blocked_matmul_matches_naive_on_random_shapes() {
    for case in 0..64u64 {
        let mut rng = seeded(derive_seed(0x51, case));
        let m = rng.gen_range(1usize..32);
        let k = rng.gen_range(1usize..32);
        let n = rng.gen_range(1usize..32);
        let a = Tensor::from_vec(
            Shape::d2(m, k),
            (0..m * k).map(|_| rng.gen_range(-4.0f32..4.0)).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            Shape::d2(k, n),
            (0..k * n).map(|_| rng.gen_range(-4.0f32..4.0)).collect(),
        )
        .unwrap();
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_naive(&b).unwrap());
    }
}
