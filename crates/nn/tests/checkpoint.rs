//! Checkpoint/resume integration tests: 256-case seeded round-trip
//! property, bit-identical interrupted-vs-uninterrupted training, typed
//! corruption errors with `.bak` fallback, and deterministic bit-flip
//! fault injection through the network hooks.

use std::path::PathBuf;

use qnn_faults::{FaultInjector, StoreError};
use qnn_nn::arch::NetworkSpec;
use qnn_nn::checkpoint::bak_path;
use qnn_nn::{
    ActivationCalibration, Mode, Network, NnError, TrainCheckpoint, Trainer, TrainerConfig,
};
use qnn_quant::calibrate::Method;
use qnn_quant::Precision;
use qnn_tensor::{rng, Shape, Tensor};

fn spec() -> NetworkSpec {
    NetworkSpec::new("cp", (1, 4, 4)).dense(8).relu().dense(2)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("qnn-nn-checkpoint-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Linearly separable toy problem (same construction as the trainer's
/// unit tests).
fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut r = rng::seeded(seed);
    let mut data = Vec::with_capacity(n * 16);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = r.gen_range(0..2usize);
        for _ in 0..4 {
            for col in 0..4 {
                let lit = if class == 0 { col < 2 } else { col >= 2 };
                let base = if lit { 0.8 } else { 0.1 };
                data.push(base + r.gen_range(-0.05f32..0.05));
            }
        }
        labels.push(class);
    }
    (
        Tensor::from_vec(Shape::d4(n, 1, 4, 4), data).unwrap(),
        labels,
    )
}

fn state_bits(net: &Network) -> Vec<Vec<u32>> {
    net.state_dict()
        .iter()
        .map(|t| t.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn checkpoint_round_trip_is_bit_identical_256_cases() {
    let dir = tmpdir("roundtrip");
    let path = dir.join("cp.qnnf");
    let mut r = rng::seeded(0xC0FFEE);
    let mut net = Network::build(&spec(), 1).unwrap();
    for case in 0..256u32 {
        // Scramble every parameter and velocity with fresh random bits,
        // including values no training run would produce.
        for p in net.params_mut() {
            for v in p.value.as_mut_slice() {
                *v = r.gen_range(-8.0f32..8.0);
            }
            for v in p.velocity.as_mut_slice() {
                *v = r.gen_range(-1.0f32..1.0);
            }
        }
        let cp = TrainCheckpoint::capture(
            &net,
            case,
            r.gen_range(1e-6f32..1.0),
            r.gen_range(0.0f32..=1.0),
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            &[r.gen_range(0..64usize), r.gen_range(0..64usize)],
            &[r.gen_range(0.0f32..4.0), r.gen_range(0.0f32..4.0)],
        );
        cp.save(&path).unwrap();
        let (loaded, fell_back) = TrainCheckpoint::load_latest(&path).unwrap();
        assert!(!fell_back);
        assert_eq!(loaded, cp, "case {case} not bit-identical");
        let mut fresh = Network::build(&spec(), 2).unwrap();
        loaded.apply(&mut fresh).unwrap();
        assert_eq!(state_bits(&fresh), state_bits(&net), "case {case}");
    }
}

#[test]
fn interrupted_training_resumes_bit_identically() {
    let (x, y) = toy_data(96, 11);
    let cfg = TrainerConfig {
        epochs: 6,
        batch_size: 16,
        lr: 0.1,
        ..TrainerConfig::default()
    };
    let trainer = Trainer::new(cfg).unwrap();

    // Uninterrupted reference.
    let mut ref_net = Network::build(&spec(), 5).unwrap();
    let ref_report = trainer.train(&mut ref_net, &x, &y).unwrap();

    // Interrupted: run 2 epochs, "crash", then resume to completion with
    // a fresh network object.
    let dir = tmpdir("resume");
    let path = dir.join("train.qnnf");
    let mut first = Network::build(&spec(), 5).unwrap();
    let two = Trainer::new(TrainerConfig { epochs: 2, ..cfg }).unwrap();
    two.train_resumable(&mut first, &x, &y, &path).unwrap();
    drop(first); // the crash

    let mut resumed = Network::build(&spec(), 5).unwrap();
    let resumed_report = trainer
        .train_resumable(&mut resumed, &x, &y, &path)
        .unwrap();

    assert_eq!(resumed_report, ref_report);
    assert_eq!(state_bits(&resumed), state_bits(&ref_net));

    // Resuming a finished schedule re-reports without retraining.
    let mut again = Network::build(&spec(), 5).unwrap();
    let again_report = trainer.train_resumable(&mut again, &x, &y, &path).unwrap();
    assert_eq!(again_report, ref_report);
    assert_eq!(state_bits(&again), state_bits(&ref_net));
}

#[test]
fn corrupt_checkpoint_surfaces_typed_error_and_bak_rescues() {
    let (x, y) = toy_data(48, 3);
    let cfg = TrainerConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.1,
        ..TrainerConfig::default()
    };
    let dir = tmpdir("corrupt");
    let path = dir.join("train.qnnf");
    let mut net = Network::build(&spec(), 7).unwrap();
    Trainer::new(cfg)
        .unwrap()
        .train_resumable(&mut net, &x, &y, &path)
        .unwrap();

    // Two epochs ran, so the epoch-1 checkpoint was rotated to .bak.
    assert!(bak_path(&path).exists());

    // Damage the primary: load_latest falls back to the rotation.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&path, &bytes).unwrap();
    let direct = TrainCheckpoint::load(&path).unwrap_err();
    assert!(
        matches!(&direct, NnError::Store(e) if e.is_corruption()),
        "{direct:?}"
    );
    let (rescued, fell_back) = TrainCheckpoint::load_latest(&path).unwrap();
    assert!(fell_back);
    assert_eq!(rescued.epoch, 1);

    // Damage the rotation too: now the typed error propagates out of
    // train_resumable instead of silently restarting.
    std::fs::write(bak_path(&path), b"QNNFgarbage").unwrap();
    let err = Trainer::new(cfg)
        .unwrap()
        .train_resumable(&mut net, &x, &y, &path)
        .unwrap_err();
    assert!(matches!(
        err,
        NnError::Store(StoreError::CrcMismatch { .. })
    ));
}

#[test]
fn weight_fault_injection_is_deterministic_and_on_grid() {
    let (x, _) = toy_data(8, 9);
    let run = || {
        let mut net = Network::build(&spec(), 21).unwrap();
        net.set_precision(
            Precision::fixed(8, 8),
            Method::MaxAbs,
            &x,
            ActivationCalibration::PerLayer,
        )
        .unwrap();
        let mut inj = FaultInjector::new(0.02, 555).unwrap();
        let flips = net.inject_weight_faults(&mut inj);
        let y = net.forward(&x, Mode::Eval).unwrap();
        (flips, y)
    };
    let (flips_a, ya) = run();
    let (flips_b, yb) = run();
    assert!(flips_a > 0);
    assert_eq!(flips_a, flips_b);
    assert_eq!(ya, yb);
}

#[test]
fn activation_faults_perturb_forward_and_clear_cleanly() {
    let (x, _) = toy_data(8, 13);
    let mut net = Network::build(&spec(), 31).unwrap();
    net.set_precision(
        Precision::fixed(8, 8),
        Method::MaxAbs,
        &x,
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    let clean = net.forward(&x, Mode::Eval).unwrap();
    net.set_activation_faults(Some(FaultInjector::new(0.01, 77).unwrap()));
    let faulty = net.forward(&x, Mode::Eval).unwrap();
    assert_ne!(clean, faulty, "1% per-bit faults must perturb the output");
    net.set_activation_faults(None);
    assert_eq!(net.forward(&x, Mode::Eval).unwrap(), clean);
}
