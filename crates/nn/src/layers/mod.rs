//! Network layers.
//!
//! Every layer implements [`Layer`]: a stateful forward pass (caching what
//! backward needs), a backward pass producing the input gradient and
//! filling parameter gradients, and hooks for the per-layer weight
//! quantizer installed by quantization-aware training.

mod conv;
mod dense;
mod pool;
mod relu;

pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::{AvgPool2d, MaxPool2d};
pub use relu::Relu;

use qnn_quant::Quantizer;
use qnn_tensor::{Shape, Tensor};

use crate::error::NnError;
use crate::network::Mode;
use crate::param::Param;

/// A shared-ownership quantizer handle, installed per layer by
/// [`Network::set_precision`](crate::Network::set_precision).
pub type QuantizerHandle = std::sync::Arc<dyn Quantizer + Send + Sync>;

/// A sequential network layer.
///
/// The trait is object-safe; a [`Network`](crate::Network) holds
/// `Box<dyn Layer>`s. Layers without parameters use the default no-op
/// implementations of the parameter and quantizer hooks.
pub trait Layer: std::fmt::Debug + Send {
    /// Stable layer kind name, e.g. `"conv2d"`.
    fn name(&self) -> &'static str;

    /// Computes the layer output. In [`Mode::Train`] the layer caches
    /// whatever [`backward`](Layer::backward) will need.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError>;

    /// Computes the input gradient from the output gradient and accumulates
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if no training-mode forward pass
    /// preceded this call.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Output shape for a given input shape (both without the batch axis).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn output_shape(&self, input: &Shape) -> Result<Shape, NnError>;

    /// Mutable access to trainable parameters (weights first, then bias).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Installs (or clears) the weight quantizer for QAT / quantized
    /// inference. No-op for parameterless layers.
    fn set_weight_quantizer(&mut self, _q: Option<QuantizerHandle>) {}

    /// The installed weight quantizer, if any.
    fn weight_quantizer(&self) -> Option<&QuantizerHandle> {
        None
    }

    /// Installs (or clears) the quantizer that produced this layer's
    /// *input* activations — [`Network`](crate::Network) wires in the
    /// activation quantizer of the preceding slot so Dense/Conv2d know the
    /// input grid and can dispatch to the native quantized kernels. No-op
    /// for layers without a fast path.
    fn set_input_quantizer(&mut self, _q: Option<QuantizerHandle>) {}

    /// Installs (or clears) the quantizer the network applies to this
    /// layer's *output* activations, so the native path can fuse that snap
    /// into the kernel epilogue instead of a separate whole-tensor pass.
    /// No-op for layers without a fast path.
    fn set_output_quantizer(&mut self, _q: Option<QuantizerHandle>) {}

    /// True when this layer's most recent forward already applied the
    /// installed output quantizer through the fused kernel epilogue —
    /// [`Network`](crate::Network) then skips its separate activation
    /// quantize pass for that slot. Layers that don't fuse always return
    /// `false`; the network pass is the (bit-identical) fallback.
    fn output_quant_applied(&self) -> bool {
        false
    }
}

/// Flattens a batch `(N, C, H, W)` (or passes through `(N, D)`) into
/// `(N, D)` — the implicit reshape before a dense layer.
pub(crate) fn flatten_batch(input: &Tensor) -> Result<Tensor, NnError> {
    match input.shape().rank() {
        2 => Ok(input.clone()),
        4 => {
            let n = input.shape().dim(0);
            let d = input.len() / n;
            Ok(input.reshape(Shape::d2(n, d))?)
        }
        r => Err(NnError::Tensor(qnn_tensor::TensorError::RankMismatch {
            op: "flatten",
            expected: 4,
            actual: r,
        })),
    }
}
