use qnn_tensor::conv::{conv2d_backward_with, conv2d_with, im2col_into, ConvScratch, Geometry};
use qnn_tensor::gemm::gemm_nn;
use qnn_tensor::{init, rng, Shape, Tensor};

use crate::error::NnError;
use crate::layers::{Layer, QuantizerHandle};
use crate::native::{self, PlanCache};
use crate::network::Mode;
use crate::param::Param;

/// A 2-D convolution layer with bias.
///
/// Under quantization-aware training the forward pass convolves with the
/// **quantized** weights while `weight.value` keeps the full-precision
/// shadow copy; `backward` computes gradients against the quantized
/// weights (what the hardware multiplies by) and deposits them on the
/// shadow parameter, implementing the straight-through estimator.
///
/// Biases are *not* quantized: the modelled accelerator accumulates in a
/// wide adder tree and adds the bias at accumulator precision, so storing
/// biases at weight precision would model hardware the paper doesn't
/// describe.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    geom: Geometry,
    in_channels: usize,
    out_channels: usize,
    weight_q: Option<QuantizerHandle>,
    input_q: Option<QuantizerHandle>,
    /// The network's quantizer for this layer's *output* activations,
    /// fused into the native kernel epilogue when possible.
    output_q: Option<QuantizerHandle>,
    /// Whether the last forward applied `output_q` through the fused
    /// epilogue for *every* sample (so the network skips its separate
    /// quantize pass).
    fused_out_q: bool,
    cache: Option<ConvCache>,
    /// Eval-mode quantized-weight cache. Shadow weights only change
    /// through [`Layer::params_mut`] (optimizer, state load, fault
    /// injection) or [`Layer::set_weight_quantizer`], both of which clear
    /// this — so between mutations, re-quantizing the whole weight tensor
    /// every forward is pure waste on the serving hot path.
    frozen_qw: Option<Tensor>,
    /// Packed-weight cache for the native quantized fast path, keyed on
    /// the exact bits of the quantized weights.
    plan: PlanCache,
    /// Per-layer im2col / gradient buffers, allocated once and reused by
    /// every forward/backward call (see [`ConvScratch`]).
    scratch: ConvScratch,
}

#[derive(Debug)]
struct ConvCache {
    input: Tensor,
    qweight: Tensor,
}

impl Conv2d {
    /// Creates a convolution layer with Xavier-initialized weights.
    ///
    /// `kernel`, `stride` and `pad` follow the paper's Table I notation
    /// (`conv 5×5×20` = 20 output channels, 5×5 kernel).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0` (via [`Geometry::square`]).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let geom = Geometry::square(kernel, stride, pad);
        let mut r = rng::seeded(seed);
        let weight =
            init::xavier_uniform(Shape::d4(out_channels, in_channels, kernel, kernel), &mut r);
        Conv2d {
            weight: Param::new(weight, true),
            bias: Param::zeros(Shape::d1(out_channels), false),
            geom,
            in_channels,
            out_channels,
            weight_q: None,
            input_q: None,
            output_q: None,
            fused_out_q: false,
            cache: None,
            frozen_qw: None,
            plan: PlanCache::default(),
            scratch: ConvScratch::new(),
        }
    }

    /// The layer's convolution geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The weights actually used in the forward pass: the shadow copy
    /// passed through the installed quantizer (or as-is when none).
    pub fn effective_weight(&self) -> Tensor {
        match &self.weight_q {
            Some(q) => q.quantize(&self.weight.value),
            None => self.weight.value.clone(),
        }
    }

    /// The native quantized forward pass: per sample, im2col then the
    /// integer kernels with the exactness certificate, falling back to the
    /// same per-sample f32 GEMM [`conv2d_with`] runs when a sample's
    /// activations fail the certificate. Returns `None` (and the caller
    /// runs the simulated whole-batch path) when the layer's weights have
    /// no packable plan or the input shape is unexpected.
    ///
    /// Both branches replicate the reference computation exactly — the
    /// same im2col, the same GEMM semantics, the same per-channel bias add
    /// (fused into the kernel epilogue on the native branch, which is the
    /// same f32 additions in a different traversal order — elementwise, so
    /// bit-identical) — so the output matches [`conv2d_with`] bit-for-bit
    /// regardless of which samples went native.
    ///
    /// The output activation quantizer is additionally fused per native
    /// sample (when tracing is off). If any sample falls back, the layer
    /// reports the fusion as *not* applied and the network re-quantizes
    /// the whole tensor: quantizers are idempotent (`q(q(x)) == q(x)`, a
    /// documented [`qnn_quant::Quantizer`] contract), so the already-fused
    /// samples come through that pass unchanged.
    fn forward_native(&mut self, input: &Tensor, qw: &Tensor) -> Option<Tensor> {
        let iq = self.input_q.as_ref()?;
        let wq = self.weight_q.as_ref()?;
        let codec = iq.bit_codec()?;
        let shape = input.shape();
        if shape.rank() != 4 || shape.dim(1) != self.in_channels {
            return None;
        }
        let (n, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let (oh, ow) = self.geom.output_hw(h, w).ok()?;
        let px = oh * ow;
        let kdim = c * self.geom.kh * self.geom.kw;
        let o = self.out_channels;
        let plan = self.plan.plan_for(wq.as_ref(), o, kdim, qw.as_slice())?;
        let sample_flops = (2 * o * px * kdim) as u64;
        let mut cols = vec![0.0f32; kdim * px];
        // The kernels put activations on the row side, so the native
        // product lands transposed (px×o); `tmp` holds it per sample.
        let mut tmp = vec![0.0f32; px * o];
        let mut out = vec![0.0f32; n * o * px];
        let bias = self.bias.value.as_slice();
        let out_q = if qnn_trace::enabled() {
            None
        } else {
            self.output_q.as_deref()
        };
        // `tmp` is px×o, so its columns are output channels: the epilogue's
        // per-column bias lines up with the per-channel bias here.
        let epi = qnn_quant::packed::Epilogue {
            bias: Some(bias),
            out_quant: out_q,
        };
        let in_stride = c * h * w;
        let (mut native_flops, mut simulated_flops) = (0u64, 0u64);
        for s in 0..n {
            let image = &input.as_slice()[s * in_stride..(s + 1) * in_stride];
            im2col_into(image, c, h, w, self.geom, &mut cols).ok()?;
            let dst = &mut out[s * o * px..(s + 1) * o * px];
            let fused = qnn_quant::packed::matmul_on_grid_fused(
                &codec, &cols, px, kdim, true, plan, &epi, &mut tmp,
            );
            if fused {
                for (oi, row) in dst.chunks_exact_mut(px).enumerate() {
                    for (p, v) in row.iter_mut().enumerate() {
                        *v = tmp[p * o + oi];
                    }
                }
                native_flops += sample_flops;
            } else {
                gemm_nn(o, kdim, px, qw.as_slice(), &cols, dst);
                for (oi, row) in dst.chunks_exact_mut(px).enumerate() {
                    let b = bias[oi];
                    for v in row {
                        *v += b;
                    }
                }
                simulated_flops += sample_flops;
            }
        }
        if native_flops > 0 {
            qnn_trace::counter!(native::CTR_FLOPS_NATIVE, native_flops);
        }
        if simulated_flops > 0 {
            qnn_trace::counter!(native::CTR_FLOPS_SIMULATED, simulated_flops);
        }
        self.fused_out_q = out_q.is_some() && simulated_flops == 0;
        Tensor::from_vec(Shape::d4(n, o, oh, ow), out).ok()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        // Eval reuses the frozen quantized weights (taken here, put back
        // below); training always re-quantizes the live shadow copy.
        let qw = match (mode, self.frozen_qw.take()) {
            (Mode::Eval, Some(w)) => w,
            _ => self.effective_weight(),
        };
        self.fused_out_q = false;
        let native_out = if mode == Mode::Eval && native::native_enabled() {
            self.forward_native(input, &qw)
        } else {
            None
        };
        let out = match native_out {
            Some(out) => out,
            None => {
                self.fused_out_q = false;
                let out = conv2d_with(&mut self.scratch, input, &qw, &self.bias.value, self.geom)?;
                let s = out.shape();
                let px = s.dim(2) * s.dim(3);
                let kdim = self.in_channels * self.geom.kh * self.geom.kw;
                let flops = (2 * s.dim(0) * self.out_channels * px * kdim) as u64;
                qnn_trace::counter!(native::CTR_FLOPS_SIMULATED, flops);
                out
            }
        };
        if mode == Mode::Train {
            self.cache = Some(ConvCache {
                input: input.clone(),
                qweight: qw,
            });
        } else {
            self.cache = None;
            self.frozen_qw = Some(qw);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "conv2d" })?;
        let (gx, gw, gb) = conv2d_backward_with(
            &mut self.scratch,
            &cache.input,
            &cache.qweight,
            grad_out,
            self.geom,
        )?;
        // Straight-through estimator: the gradient w.r.t. the quantized
        // weight is applied to the shadow weight unchanged. Clipping (zero
        // gradient outside the representable range) is handled by the
        // optimizer via the quantizer's range, see `Sgd::step_quantized`.
        self.weight.grad = gw;
        self.bias.grad = gb;
        Ok(gx)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        if input.rank() != 3 || input.dim(0) != self.in_channels {
            return Err(NnError::InvalidSpec {
                network: String::new(),
                reason: format!(
                    "conv2d expects ({}, h, w) input, got {input}",
                    self.in_channels
                ),
            });
        }
        let (oh, ow) = self.geom.output_hw(input.dim(1), input.dim(2))?;
        Ok(Shape::d3(self.out_channels, oh, ow))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // The caller may mutate the shadow weights through these refs.
        self.frozen_qw = None;
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn set_weight_quantizer(&mut self, q: Option<QuantizerHandle>) {
        self.weight_q = q;
        self.frozen_qw = None;
        self.plan.clear();
    }

    fn weight_quantizer(&self) -> Option<&QuantizerHandle> {
        self.weight_q.as_ref()
    }

    fn set_input_quantizer(&mut self, q: Option<QuantizerHandle>) {
        self.input_q = q;
    }

    fn set_output_quantizer(&mut self, q: Option<QuantizerHandle>) {
        self.output_q = q;
        self.fused_out_q = false;
    }

    fn output_quant_applied(&self) -> bool {
        self.fused_out_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::Binary;
    use std::sync::Arc;

    #[test]
    fn forward_shape() {
        let mut l = Conv2d::new(1, 20, 5, 1, 0, 1);
        let x = Tensor::zeros(Shape::d4(2, 1, 28, 28));
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 20, 24, 24]);
        assert_eq!(
            l.output_shape(&Shape::d3(1, 28, 28)).unwrap(),
            Shape::d3(20, 24, 24)
        );
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = Conv2d::new(1, 2, 3, 1, 0, 1);
        let g = Tensor::zeros(Shape::d4(1, 2, 2, 2));
        assert!(matches!(
            l.backward(&g),
            Err(NnError::NoForwardCache { layer: "conv2d" })
        ));
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut l = Conv2d::new(1, 2, 3, 1, 0, 1);
        let x = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        l.forward(&x, Mode::Eval).unwrap();
        let g = Tensor::zeros(Shape::d4(1, 2, 2, 2));
        assert!(l.backward(&g).is_err());
    }

    #[test]
    fn quantizer_binarizes_forward_weights() {
        let mut l = Conv2d::new(1, 1, 2, 1, 0, 7);
        l.set_weight_quantizer(Some(Arc::new(Binary::new())));
        let w = l.effective_weight();
        assert!(w.as_slice().iter().all(|&x| x == 1.0 || x == -1.0));
        // Shadow stays full precision.
        assert!(l.params()[0]
            .value
            .as_slice()
            .iter()
            .any(|&x| x != 1.0 && x != -1.0));
    }

    #[test]
    fn gradient_lands_on_shadow_param() {
        let mut l = Conv2d::new(1, 1, 2, 1, 0, 3);
        let x = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let y = l.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.shape().clone());
        l.backward(&g).unwrap();
        assert!(l.params()[0].grad.sum() != 0.0);
        assert!(l.params()[1].grad.sum() != 0.0);
    }

    #[test]
    fn eval_weight_freeze_tracks_mutation() {
        let mut l = Conv2d::new(1, 1, 2, 1, 0, 7);
        l.set_weight_quantizer(Some(Arc::new(Binary::new())));
        let x = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let y0 = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(l.forward(&x, Mode::Eval).unwrap(), y0);
        // Negate every shadow weight through params_mut; the frozen
        // quantized copy must be rebuilt, flipping the (bias-free) output.
        let mut params = l.params_mut();
        for v in params[0].value.as_mut_slice() {
            *v = -*v;
        }
        drop(params);
        let y1 = l.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            assert_eq!(*b, -*a);
        }
    }

    #[test]
    fn output_shape_rejects_wrong_channels() {
        let l = Conv2d::new(3, 8, 3, 1, 1, 1);
        assert!(l.output_shape(&Shape::d3(1, 8, 8)).is_err());
    }
}
