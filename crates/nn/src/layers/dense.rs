use qnn_tensor::gemm::{gemm_nn_with, gemm_nt_with, gemm_tn_with, GemmScratch};
use qnn_tensor::{init, rng, Shape, Tensor};

use crate::error::NnError;
use crate::layers::{flatten_batch, Layer, QuantizerHandle};
use crate::native::{self, PlanCache};
use crate::network::Mode;
use crate::param::Param;

/// A fully-connected ("innerproduct" in Caffe/Table I terms) layer.
///
/// Accepts either `(N, D)` or `(N, C, H, W)` input — the spatial case is
/// flattened, matching how the paper's architectures transition from
/// convolutional to dense stages. Quantization semantics mirror
/// [`Conv2d`](crate::layers::Conv2d): quantized weights forward, shadow
/// weights updated, biases left at accumulator precision.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    weight_q: Option<QuantizerHandle>,
    input_q: Option<QuantizerHandle>,
    /// The network's quantizer for this layer's *output* activations,
    /// fused into the native kernel epilogue when possible.
    output_q: Option<QuantizerHandle>,
    /// Whether the last forward applied `output_q` through the fused
    /// epilogue (so the network skips its separate quantize pass).
    fused_out_q: bool,
    cache: Option<DenseCache>,
    /// Eval-mode quantized-weight cache; see the field of the same name on
    /// [`Conv2d`](crate::layers::Conv2d) for the invalidation contract.
    frozen_qw: Option<Tensor>,
    /// Packed-weight cache for the native quantized fast path, keyed on
    /// the exact bits of the quantized weights.
    plan: PlanCache,
    /// Per-layer GEMM packing buffers, allocated once and reused by every
    /// forward/backward call.
    scratch: GemmScratch,
}

#[derive(Debug)]
struct DenseCache {
    input2d: Tensor,
    input_shape: Shape,
    qweight: Tensor,
}

impl Dense {
    /// Creates a dense layer `(out, in)` with Xavier-initialized weights.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        let weight = init::xavier_uniform(Shape::d2(out_features, in_features), &mut r);
        Dense {
            weight: Param::new(weight, true),
            bias: Param::zeros(Shape::d1(out_features), false),
            in_features,
            out_features,
            weight_q: None,
            input_q: None,
            output_q: None,
            fused_out_q: false,
            cache: None,
            frozen_qw: None,
            plan: PlanCache::default(),
            scratch: GemmScratch::default(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weights used in the forward pass (shadow copy through the
    /// quantizer, or as-is when none is installed).
    pub fn effective_weight(&self) -> Tensor {
        match &self.weight_q {
            Some(q) => q.quantize(&self.weight.value),
            None => self.weight.value.clone(),
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let x = flatten_batch(input)?;
        if x.shape().dim(1) != self.in_features {
            return Err(NnError::InvalidSpec {
                network: String::new(),
                reason: format!(
                    "dense expects {} input features, got {}",
                    self.in_features,
                    x.shape().dim(1)
                ),
            });
        }
        // Eval reuses the frozen quantized weights (taken here, put back
        // below); training always re-quantizes the live shadow copy.
        let qw = match (mode, self.frozen_qw.take()) {
            (Mode::Eval, Some(w)) => w,
            _ => self.effective_weight(),
        };
        // y = x · Wᵀ + b — the (out, in) weight matrix is the B operand of
        // an NT product, so no transpose is ever materialised.
        let n = x.shape().dim(0);
        let mut out = vec![0.0f32; n * self.out_features];
        let flops = (2 * n * self.in_features * self.out_features) as u64;
        // Native quantized fast path (Eval only): runs the integer kernels
        // when the exactness certificate guarantees bit-identity with the
        // simulated GEMM below. The bias add is fused into the kernel
        // epilogue, and so is the output activation quantizer — except
        // under tracing, where the network's separate quantize pass must
        // keep running so its per-pass telemetry is observed.
        self.fused_out_q = false;
        let out_q = if qnn_trace::enabled() {
            None
        } else {
            self.output_q.as_deref()
        };
        let went_native = mode == Mode::Eval
            && native::native_enabled()
            && match (&self.input_q, &self.weight_q) {
                (Some(iq), Some(wq)) => {
                    let codec = iq.bit_codec();
                    let plan = self.plan.plan_for(
                        wq.as_ref(),
                        self.out_features,
                        self.in_features,
                        qw.as_slice(),
                    );
                    match (codec, plan) {
                        (Some(codec), Some(plan)) => {
                            let epi = qnn_quant::packed::Epilogue {
                                bias: Some(self.bias.value.as_slice()),
                                out_quant: out_q,
                            };
                            qnn_quant::packed::matmul_on_grid_fused(
                                &codec,
                                x.as_slice(),
                                n,
                                self.in_features,
                                false,
                                plan,
                                &epi,
                                &mut out,
                            )
                        }
                        _ => false,
                    }
                }
                _ => false,
            };
        if went_native {
            qnn_trace::counter!(native::CTR_FLOPS_NATIVE, flops);
            self.fused_out_q = out_q.is_some();
        } else {
            qnn_trace::counter!(native::CTR_FLOPS_SIMULATED, flops);
            gemm_nt_with(
                &mut self.scratch,
                n,
                self.in_features,
                self.out_features,
                x.as_slice(),
                qw.as_slice(),
                &mut out,
            );
            let b = self.bias.value.as_slice();
            for i in 0..n {
                for j in 0..self.out_features {
                    out[i * self.out_features + j] += b[j];
                }
            }
        }
        let out = Tensor::from_vec(Shape::d2(n, self.out_features), out)?;
        if mode == Mode::Train {
            self.cache = Some(DenseCache {
                input2d: x,
                input_shape: input.shape().clone(),
                qweight: qw,
            });
        } else {
            self.cache = None;
            self.frozen_qw = Some(qw);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "dense" })?;
        // dW = dYᵀ · X ; db = column sums of dY ; dX = dY · W. Both products
        // run as TN/NN GEMMs straight off the cached slices.
        let n = grad_out.shape().dim(0);
        let gos = grad_out.as_slice();
        let mut gw = vec![0.0f32; self.out_features * self.in_features];
        gemm_tn_with(
            &mut self.scratch,
            self.out_features,
            n,
            self.in_features,
            gos,
            cache.input2d.as_slice(),
            &mut gw,
        );
        let mut gb = vec![0.0f32; self.out_features];
        for i in 0..n {
            for j in 0..self.out_features {
                gb[j] += gos[i * self.out_features + j];
            }
        }
        let mut gx = vec![0.0f32; n * self.in_features];
        gemm_nn_with(
            &mut self.scratch,
            n,
            self.out_features,
            self.in_features,
            gos,
            cache.qweight.as_slice(),
            &mut gx,
        );
        let gx2 = Tensor::from_vec(Shape::d2(n, self.in_features), gx)?;
        self.weight.grad = Tensor::from_vec(Shape::d2(self.out_features, self.in_features), gw)?;
        self.bias.grad = Tensor::from_vec(Shape::d1(self.out_features), gb)?;
        Ok(gx2.reshape(cache.input_shape)?)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        let d = input.len();
        if d != self.in_features {
            return Err(NnError::InvalidSpec {
                network: String::new(),
                reason: format!(
                    "dense expects {} input features, got {d} from {input}",
                    self.in_features
                ),
            });
        }
        Ok(Shape::d1(self.out_features))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // The caller may mutate the shadow weights through these refs.
        self.frozen_qw = None;
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn set_weight_quantizer(&mut self, q: Option<QuantizerHandle>) {
        self.weight_q = q;
        self.frozen_qw = None;
        self.plan.clear();
    }

    fn weight_quantizer(&self) -> Option<&QuantizerHandle> {
        self.weight_q.as_ref()
    }

    fn set_input_quantizer(&mut self, q: Option<QuantizerHandle>) {
        self.input_q = q;
    }

    fn set_output_quantizer(&mut self, q: Option<QuantizerHandle>) {
        self.output_q = q;
        self.fused_out_q = false;
    }

    fn output_quant_applied(&self) -> bool {
        self.fused_out_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_hand_computation() {
        let mut l = Dense::new(2, 2, 1);
        l.weight.value = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        l.bias.value = Tensor::from_vec(Shape::d1(2), vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![1., 1.]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn flattens_spatial_input() {
        let mut l = Dense::new(8, 3, 1);
        let x = Tensor::ones(Shape::d4(2, 2, 2, 2));
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut l = Dense::new(3, 2, 5);
        let x = Tensor::from_vec(Shape::d2(2, 3), vec![0.5, -1., 2., 0., 1., -0.5]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let gx = l.backward(&gout).unwrap();
        let eps = 1e-3;
        // weight gradient check
        let w0 = l.weight.value.clone();
        for idx in [0usize, 3, 5] {
            let mut wp = w0.clone();
            wp.as_mut_slice()[idx] += eps;
            // Through params_mut, like real callers — direct field writes
            // would bypass the eval-weight freeze invalidation.
            l.params_mut()[0].value = wp;
            let yp = l.forward(&x, Mode::Eval).unwrap().sum();
            let mut wm = w0.clone();
            wm.as_mut_slice()[idx] -= eps;
            l.params_mut()[0].value = wm;
            let ym = l.forward(&x, Mode::Eval).unwrap().sum();
            l.params_mut()[0].value = w0.clone();
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - l.weight.grad.as_slice()[idx]).abs() < 1e-2);
        }
        // input gradient = row sums of W columns
        let mut expect = [0.0f32; 3];
        for (j, e) in expect.iter_mut().enumerate() {
            for o in 0..2 {
                *e += w0.as_slice()[o * 3 + j];
            }
        }
        for i in 0..2 {
            for (j, e) in expect.iter().enumerate() {
                assert!((gx.as_slice()[i * 3 + j] - e).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn eval_weight_freeze_invalidated_by_params_mut() {
        let mut l = Dense::new(2, 1, 9);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![1., 1.]).unwrap();
        let y0 = l.forward(&x, Mode::Eval).unwrap().sum();
        l.params_mut()[0].value = Tensor::ones(Shape::d2(1, 2));
        // Second Eval forward must see the new weights, not the frozen copy.
        assert_eq!(l.forward(&x, Mode::Eval).unwrap().sum(), 2.0);
        assert_ne!(y0, 2.0);
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut l = Dense::new(4, 2, 1);
        let x = Tensor::zeros(Shape::d2(1, 5));
        assert!(l.forward(&x, Mode::Eval).is_err());
        assert!(l.output_shape(&Shape::d1(5)).is_err());
    }

    #[test]
    fn output_shape_flattens() {
        let l = Dense::new(12, 7, 1);
        assert_eq!(l.output_shape(&Shape::d3(3, 2, 2)).unwrap(), Shape::d1(7));
    }
}
