use qnn_tensor::{Shape, Tensor};

use crate::error::NnError;
use crate::layers::Layer;
use crate::network::Mode;

/// Rectified linear unit, `max(0, x)` — the nonlinearity stage of the
/// modelled accelerator's NFU pipeline.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    in_shape: Option<Shape>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
            self.in_shape = Some(input.shape().clone());
        } else {
            self.mask = None;
            self.in_shape = None;
        }
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::NoForwardCache { layer: "relu" })?;
        let shape = self.in_shape.take().expect("shape cached with mask");
        if grad_out.len() != mask.len() {
            return Err(NnError::Tensor(qnn_tensor::TensorError::LengthMismatch {
                shape,
                len: grad_out.len(),
            }));
        }
        let data = grad_out
            .as_slice()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(shape, data)?)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        Ok(input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negatives() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(Shape::d1(4), vec![-1., 0., 2., -3.]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0., 0., 2., 0.]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(Shape::d1(4), vec![-1., 0.5, 2., -3.]).unwrap();
        l.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(Shape::d1(4));
        let gx = l.backward(&g).unwrap();
        assert_eq!(gx.as_slice(), &[0., 1., 1., 0.]);
    }

    #[test]
    fn zero_input_gets_zero_gradient() {
        // The subgradient choice at exactly 0 is 0 (x > 0 strictly).
        let mut l = Relu::new();
        let x = Tensor::zeros(Shape::d1(2));
        l.forward(&x, Mode::Train).unwrap();
        let gx = l.backward(&Tensor::ones(Shape::d1(2))).unwrap();
        assert_eq!(gx.as_slice(), &[0., 0.]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut l = Relu::new();
        assert!(l.backward(&Tensor::ones(Shape::d1(1))).is_err());
    }
}
