use qnn_tensor::conv::Geometry;
use qnn_tensor::pool;
use qnn_tensor::{Shape, Tensor};

use crate::error::NnError;
use crate::layers::Layer;
use crate::network::Mode;

/// Max-pooling layer (`maxpool k×k` rows of Table I/II).
#[derive(Debug)]
pub struct MaxPool2d {
    geom: Geometry,
    cache: Option<(Shape, Vec<usize>)>,
}

impl MaxPool2d {
    /// Square max pooling with the given kernel and stride (no padding —
    /// none of the paper's architectures pad their pooling). `ceil`
    /// selects Caffe's ceil-mode output sizing (the paper's ALEX pools).
    pub fn new(kernel: usize, stride: usize, ceil: bool) -> Self {
        let geom = if ceil {
            Geometry::square_ceil(kernel, stride, 0)
        } else {
            Geometry::square(kernel, stride, 0)
        };
        MaxPool2d { geom, cache: None }
    }

    /// The pooling geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let out = pool::max_pool2d(input, self.geom)?;
        if mode == Mode::Train {
            self.cache = Some((input.shape().clone(), out.argmax));
        } else {
            self.cache = None;
        }
        Ok(out.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let (shape, argmax) = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "maxpool" })?;
        Ok(pool::max_pool2d_backward(&shape, &argmax, grad_out)?)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        if input.rank() != 3 {
            return Err(NnError::Tensor(qnn_tensor::TensorError::RankMismatch {
                op: "maxpool",
                expected: 3,
                actual: input.rank(),
            }));
        }
        let (oh, ow) = self.geom.output_hw(input.dim(1), input.dim(2))?;
        Ok(Shape::d3(input.dim(0), oh, ow))
    }
}

/// Average-pooling layer (`avgpool k×k` rows of Table I/II).
#[derive(Debug)]
pub struct AvgPool2d {
    geom: Geometry,
    in_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Square average pooling with the given kernel and stride; `ceil` as
    /// in [`MaxPool2d::new`].
    pub fn new(kernel: usize, stride: usize, ceil: bool) -> Self {
        let geom = if ceil {
            Geometry::square_ceil(kernel, stride, 0)
        } else {
            Geometry::square(kernel, stride, 0)
        };
        AvgPool2d {
            geom,
            in_shape: None,
        }
    }

    /// The pooling geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avgpool"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let out = pool::avg_pool2d(input, self.geom)?;
        self.in_shape = (mode == Mode::Train).then(|| input.shape().clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .in_shape
            .take()
            .ok_or(NnError::NoForwardCache { layer: "avgpool" })?;
        Ok(pool::avg_pool2d_backward(&shape, grad_out, self.geom)?)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        if input.rank() != 3 {
            return Err(NnError::Tensor(qnn_tensor::TensorError::RankMismatch {
                op: "avgpool",
                expected: 3,
                actual: input.rank(),
            }));
        }
        let (oh, ow) = self.geom.output_hw(input.dim(1), input.dim(2))?;
        Ok(Shape::d3(input.dim(0), oh, ow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_round_trip() {
        let mut l = MaxPool2d::new(2, 2, false);
        let x = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 5., 2., 3.]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[5.]);
        let gx = l.backward(&Tensor::ones(Shape::d4(1, 1, 1, 1))).unwrap();
        assert_eq!(gx.as_slice(), &[0., 1., 0., 0.]);
    }

    #[test]
    fn avg_pool_layer_round_trip() {
        let mut l = AvgPool2d::new(2, 2, false);
        let x = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[2.5]);
        let gx = l.backward(&Tensor::ones(Shape::d4(1, 1, 1, 1))).unwrap();
        assert_eq!(gx.as_slice(), &[0.25; 4]);
    }

    #[test]
    fn output_shapes() {
        let l = MaxPool2d::new(3, 2, false);
        assert_eq!(
            l.output_shape(&Shape::d3(32, 32, 32)).unwrap(),
            Shape::d3(32, 15, 15)
        );
        let l = AvgPool2d::new(3, 2, false);
        assert_eq!(
            l.output_shape(&Shape::d3(64, 8, 8)).unwrap(),
            Shape::d3(64, 3, 3)
        );
    }

    #[test]
    fn pools_have_no_params() {
        let mut l = MaxPool2d::new(2, 2, false);
        assert!(l.params_mut().is_empty());
        assert!(l.weight_quantizer().is_none());
    }
}
