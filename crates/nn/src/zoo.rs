//! The paper's benchmark architectures.
//!
//! Table I (benchmark networks) and Table II (expanded CIFAR networks),
//! transcribed row by row. Strides and paddings follow the Caffe model
//! definitions the originals come from: convolutions are stride 1 (LeNet
//! unpadded, the CIFAR networks padded to preserve width), pools use
//! stride 2. ReLUs sit after every convolution and hidden dense layer.
//!
//! Pooling output sizing follows each source model's Caffe convention:
//! the ALEX-family 3×3/stride-2 pools use ceil mode (feature sizes
//! 16/8/4), everything else floor (identical for the even 2×2 cases).

use crate::arch::NetworkSpec;

/// LeNet on MNIST-shaped input (Table I, column 1): `28×28×1`,
/// `conv 5×5×20 → maxpool 2×2 → conv 5×5×50 → maxpool 2×2 →
/// innerproduct 500 → innerproduct 10`.
///
/// ```
/// let spec = qnn_nn::zoo::lenet();
/// assert_eq!(spec.param_count(), 431_080); // ≈1.7 MB at float32
/// ```
pub fn lenet() -> NetworkSpec {
    NetworkSpec::new("lenet", (1, 28, 28))
        .conv(20, 5, 1, 0)
        .relu()
        .max_pool(2, 2)
        .conv(50, 5, 1, 0)
        .relu()
        .max_pool(2, 2)
        .dense(500)
        .relu()
        .dense(10)
}

/// ConvNet on SVHN-shaped input (Table I, column 2): `32×32×3`,
/// `conv 5×5×16 → maxpool 2×2 → conv 7×7×512 → maxpool 2×2 →
/// innerproduct 20 → innerproduct 10`.
pub fn convnet() -> NetworkSpec {
    NetworkSpec::new("convnet", (3, 32, 32))
        .conv(16, 5, 1, 0)
        .relu()
        .max_pool(2, 2)
        .conv(512, 7, 1, 0)
        .relu()
        .max_pool(2, 2)
        .dense(20)
        .relu()
        .dense(10)
}

/// ALEX (Krizhevsky's CIFAR-10 network; Table I, column 3): `32×32×3`,
/// `conv 5×5×32 → maxpool 3×3 → conv 5×5×32 → avgpool 3×3 →
/// conv 5×5×64 → avgpool 3×3 → innerproduct 10`.
pub fn alex() -> NetworkSpec {
    NetworkSpec::new("alex", (3, 32, 32))
        .conv(32, 5, 1, 2)
        .relu()
        .max_pool_ceil(3, 2)
        .conv(32, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .conv(64, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .dense(10)
}

/// ALEX+ (Table II, column 1): ALEX with the channel count of every
/// convolutional layer doubled.
pub fn alex_plus() -> NetworkSpec {
    NetworkSpec::new("alex+", (3, 32, 32))
        .conv(64, 5, 1, 2)
        .relu()
        .max_pool_ceil(3, 2)
        .conv(64, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .conv(128, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .dense(10)
}

/// ALEX++ (Table II, column 2): channels double whenever the feature size
/// halves (VGG-style): `conv 3×3×64 → maxpool 2×2 → conv 3×3×128 →
/// maxpool 2×2 → conv 3×3×256 → maxpool 2×2 → innerproduct 512 →
/// innerproduct 10`.
pub fn alex_plus_plus() -> NetworkSpec {
    NetworkSpec::new("alex++", (3, 32, 32))
        .conv(64, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(128, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(256, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(512)
        .relu()
        .dense(10)
}

/// A reduced LeNet for fast tests and examples: same topology, fewer
/// channels/units. Not part of the paper; exists so the test suite can
/// exercise full training loops in seconds.
pub fn lenet_small() -> NetworkSpec {
    NetworkSpec::new("lenet-small", (1, 28, 28))
        .conv(6, 5, 1, 0)
        .relu()
        .max_pool(2, 2)
        .conv(12, 5, 1, 0)
        .relu()
        .max_pool(2, 2)
        .dense(48)
        .relu()
        .dense(10)
}

/// Reduced ConvNet for fast tests and `Reduced`-scale experiments: same
/// stage structure as [`convnet`] with narrower channels.
pub fn convnet_small() -> NetworkSpec {
    NetworkSpec::new("convnet-small", (3, 32, 32))
        .conv(8, 5, 1, 0)
        .relu()
        .max_pool(2, 2)
        .conv(32, 7, 1, 0)
        .relu()
        .max_pool(2, 2)
        .dense(20)
        .relu()
        .dense(10)
}

/// Reduced ALEX+ (channels of [`alex_small`] doubled).
pub fn alex_plus_small() -> NetworkSpec {
    NetworkSpec::new("alex+-small", (3, 32, 32))
        .conv(16, 5, 1, 2)
        .relu()
        .max_pool_ceil(3, 2)
        .conv(16, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .conv(32, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .dense(10)
}

/// Reduced ALEX++ (VGG-style doubling, narrow).
pub fn alex_plus_plus_small() -> NetworkSpec {
    NetworkSpec::new("alex++-small", (3, 32, 32))
        .conv(16, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(32, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(64, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(128)
        .relu()
        .dense(10)
}

/// Reduced ALEX for fast tests: same stage structure on `32×32×3`.
pub fn alex_small() -> NetworkSpec {
    NetworkSpec::new("alex-small", (3, 32, 32))
        .conv(8, 5, 1, 2)
        .relu()
        .max_pool_ceil(3, 2)
        .conv(8, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .conv(16, 5, 1, 2)
        .relu()
        .avg_pool_ceil(3, 2)
        .dense(10)
}

/// All five paper networks, in (Table I ++ Table II) order.
pub fn all_paper_networks() -> Vec<NetworkSpec> {
    vec![lenet(), convnet(), alex(), alex_plus(), alex_plus_plus()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_matches_table1() {
        let s = lenet().summaries().unwrap();
        // conv 5×5×20 on 28×28 → 24×24; pool → 12; conv 5×5×50 → 8; pool → 4.
        assert_eq!(s[0].output.dims(), &[20, 24, 24]);
        assert_eq!(s[3].output.dims(), &[50, 8, 8]);
        assert_eq!(lenet().num_classes(), Some(10));
    }

    #[test]
    fn convnet_matches_table1() {
        let s = convnet().summaries().unwrap();
        assert_eq!(s[0].output.dims(), &[16, 28, 28]);
        assert_eq!(s[2].output.dims(), &[16, 14, 14]);
        assert_eq!(s[3].output.dims(), &[512, 8, 8]);
        assert_eq!(s[5].output.dims(), &[512, 4, 4]);
    }

    #[test]
    fn alex_matches_table1() {
        let s = alex().summaries().unwrap();
        assert_eq!(s[0].output.dims(), &[32, 32, 32]); // padded conv keeps 32
        assert_eq!(s[2].output.dims(), &[32, 16, 16]); // ceil pooling (Caffe)
        assert_eq!(s[5].output.dims(), &[32, 8, 8]);
        assert_eq!(s[8].output.dims(), &[64, 4, 4]);
        assert_eq!(s.last().unwrap().output.dims(), &[10]);
    }

    #[test]
    fn parameter_memory_matches_paper_quotes() {
        // §V-B: "approximately 1650KB, and 2150KB, and 350KB of memory for
        // LeNet, CONVnet, and ALEX" at float32; ALEX+ ≈1250KB, ALEX++ ≈9400KB.
        let kb = |s: &NetworkSpec| s.param_count() * 4 / 1024;
        let tol = |got: usize, want: usize| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.12, "{got} KB vs paper's ≈{want} KB");
        };
        tol(kb(&lenet()), 1650);
        tol(kb(&convnet()), 2150);
        tol(kb(&alex()), 350);
        tol(kb(&alex_plus()), 1250);
        tol(kb(&alex_plus_plus()), 9400);
    }

    #[test]
    fn alex_variants_grow_monotonically() {
        let a = alex().macs_per_image();
        let p = alex_plus().macs_per_image();
        let pp = alex_plus_plus().macs_per_image();
        assert!(p > 2 * a, "ALEX+ should be >2× ALEX MACs: {p} vs {a}");
        assert!(pp > a, "ALEX++ bigger than ALEX");
        let ppp = alex_plus_plus().param_count();
        assert!(ppp > 8 * alex_plus().param_count() / 2);
    }

    #[test]
    fn every_network_builds_and_runs() {
        use crate::network::{Mode, Network};
        use qnn_tensor::{Shape, Tensor};
        for spec in [lenet_small(), alex_small()] {
            let (c, h, w) = spec.input();
            let mut net = Network::build(&spec, 1).unwrap();
            let x = Tensor::zeros(Shape::d4(1, c, h, w));
            let y = net.forward(&x, Mode::Eval).unwrap();
            assert_eq!(y.shape().dims(), &[1, 10]);
        }
    }

    #[test]
    fn all_paper_networks_validate() {
        for spec in all_paper_networks() {
            assert!(spec.summaries().is_ok(), "{} invalid", spec.name());
            assert!(spec.macs_per_image() > 0);
        }
    }
}
