use std::error::Error;
use std::fmt;

use qnn_faults::StoreError;
use qnn_quant::FormatError;
use qnn_tensor::TensorError;

/// Error raised by network construction, execution and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor kernel rejected its operands.
    Tensor(TensorError),
    /// A quantization format could not be constructed.
    Format(FormatError),
    /// The network specification is internally inconsistent (e.g. a dense
    /// layer after an undefined spatial collapse, or an empty network).
    InvalidSpec {
        /// The network's name.
        network: String,
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An input batch does not match the network's expected input shape.
    InputMismatch {
        /// Expected `(C, H, W)`.
        expected: (usize, usize, usize),
        /// The offending batch shape, printed.
        actual: String,
    },
    /// `backward` was called without a preceding `forward` (no caches).
    NoForwardCache {
        /// Name of the layer that had no cache.
        layer: &'static str,
    },
    /// Labels and batch size disagree, or a label is out of class range.
    InvalidLabels {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A configuration value is unusable (zero batch size, zero epochs,
    /// non-finite learning rate, ...).
    InvalidConfig {
        /// Human-readable description of the bad value.
        reason: String,
    },
    /// Reading or writing a checkpoint container failed; see the wrapped
    /// [`StoreError`] for whether the file was corrupt or merely absent.
    Store(StoreError),
    /// A checkpoint decoded cleanly but does not fit this network or
    /// trainer (wrong parameter count/shapes, epoch beyond the schedule).
    CheckpointMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A sweep ledger decoded cleanly but belongs to a different *kind*
    /// of sweep altogether (e.g. a `tune` ledger fed to a `table4`
    /// resume) — a caller bug, kept distinct from the same-kind
    /// label/seed drift [`NnError::CheckpointMismatch`] reports.
    SweepKindMismatch {
        /// The kind recorded in the ledger.
        found: String,
        /// The kind this run expected.
        expected: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Format(e) => write!(f, "format error: {e}"),
            NnError::InvalidSpec { network, reason } => {
                write!(f, "invalid network spec `{network}`: {reason}")
            }
            NnError::InputMismatch { expected, actual } => write!(
                f,
                "input batch {actual} does not match expected ({}, {}, {})",
                expected.0, expected.1, expected.2
            ),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called on `{layer}` without a cached forward")
            }
            NnError::InvalidLabels { reason } => write!(f, "invalid labels: {reason}"),
            NnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            NnError::Store(e) => write!(f, "checkpoint store error: {e}"),
            NnError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match: {reason}")
            }
            NnError::SweepKindMismatch { found, expected } => write!(
                f,
                "sweep ledger kind mismatch: ledger was written by a `{found}` sweep, \
                 this run is `{expected}`"
            ),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Format(e) => Some(e),
            NnError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<FormatError> for NnError {
    fn from(e: FormatError) -> Self {
        NnError::Format(e)
    }
}

impl From<StoreError> for NnError {
    fn from(e: StoreError) -> Self {
        NnError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        let te = TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: 3,
        };
        let e: NnError = te.into();
        assert!(e.to_string().contains("matmul"));
        assert!(e.source().is_some());
    }
}
