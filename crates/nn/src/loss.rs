//! Softmax cross-entropy loss — the classification objective of all three
//! benchmark networks.

use qnn_tensor::{Shape, Tensor};

use crate::error::NnError;

/// Loss value and logits gradient from one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch, in nats.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, `(N, K)`.
    pub grad: Tensor,
    /// Number of samples whose argmax matched the label.
    pub correct: usize,
}

/// Computes mean softmax cross-entropy and its gradient for logits
/// `(N, K)` against integer class labels.
///
/// Uses the max-subtraction trick, so arbitrarily large logits (which
/// 32-bit fixed-point feature maps can produce) do not overflow.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabels`] if `labels.len() != N` or any label
/// is `>= K`, and a tensor error if `logits` is not rank 2.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput, NnError> {
    if logits.shape().rank() != 2 {
        return Err(NnError::Tensor(qnn_tensor::TensorError::RankMismatch {
            op: "softmax_cross_entropy",
            expected: 2,
            actual: logits.shape().rank(),
        }));
    }
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    if labels.len() != n {
        return Err(NnError::InvalidLabels {
            reason: format!("{} labels for a batch of {n}", labels.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::InvalidLabels {
            reason: format!("label {bad} out of range for {k} classes"),
        });
    }
    let data = logits.as_slice();
    let mut grad = vec![0.0f32; n * k];
    let mut total = 0.0f64;
    let mut correct = 0usize;
    for i in 0..n {
        let row = &data[i * k..(i + 1) * k];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let label = labels[i];
        let logp = (row[label] - max) - denom.ln();
        total -= logp as f64;
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            let p = (v - max).exp() / denom;
            grad[i * k + j] = p / n as f32;
            if v > row[best] {
                best = j;
            }
        }
        grad[i * k + label] -= 1.0 / n as f32;
        if best == label {
            correct += 1;
        }
    }
    Ok(LossOutput {
        loss: (total / n as f64) as f32,
        grad: Tensor::from_vec(Shape::d2(n, k), grad)?,
        correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(n: usize, k: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(n, k), v).unwrap()
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let l = logits(1, 4, vec![0.0; 4]);
        let out = softmax_cross_entropy(&l, &[2]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_near_zero_loss() {
        let l = logits(1, 3, vec![20.0, 0.0, 0.0]);
        let out = softmax_cross_entropy(&l, &[0]).unwrap();
        assert!(out.loss < 1e-6);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn confident_wrong_prediction_has_large_loss() {
        let l = logits(1, 3, vec![20.0, 0.0, 0.0]);
        let out = softmax_cross_entropy(&l, &[1]).unwrap();
        assert!(out.loss > 10.0);
        assert_eq!(out.correct, 0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let l = logits(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let out = softmax_cross_entropy(&l, &[0, 2]).unwrap();
        let g = out.grad.as_slice();
        for i in 0..2 {
            let s: f32 = g[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let base = vec![0.5f32, -1.2, 0.3, 2.0, 0.1, -0.7];
        let labels = [2usize, 0];
        let l = logits(2, 3, base.clone());
        let out = softmax_cross_entropy(&l, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut vp = base.clone();
            vp[idx] += eps;
            let lp = softmax_cross_entropy(&logits(2, 3, vp), &labels)
                .unwrap()
                .loss;
            let mut vm = base.clone();
            vm[idx] -= eps;
            let lm = softmax_cross_entropy(&logits(2, 3, vm), &labels)
                .unwrap()
                .loss;
            let num = (lp - lm) / (2.0 * eps);
            let ana = out.grad.as_slice()[idx];
            assert!((num - ana).abs() < 1e-3, "idx {idx}: num={num} ana={ana}");
        }
    }

    #[test]
    fn huge_logits_do_not_overflow() {
        let l = logits(1, 2, vec![1e30, -1e30]);
        let out = softmax_cross_entropy(&l, &[0]).unwrap();
        assert!(out.loss.is_finite());
    }

    #[test]
    fn label_validation() {
        let l = logits(1, 3, vec![0.0; 3]);
        assert!(softmax_cross_entropy(&l, &[3]).is_err());
        assert!(softmax_cross_entropy(&l, &[0, 1]).is_err());
    }
}
