//! Native low-precision fast-path dispatch for inference.
//!
//! When a layer's inputs and weights are both quantized to formats with a
//! packable [`BitCodec`], the Eval-mode forward pass can skip the simulated
//! f32 GEMM and run the integer kernels in `qnn_tensor::qgemm` instead:
//! fixed-point i8/i16 multiply-accumulate, XNOR+popcount for binary×binary,
//! and shift-add for power-of-two weights.
//!
//! **The fast path never changes results.** Dispatch goes through
//! [`qnn_quant::packed::matmul_on_grid`], which is gated on the exactness
//! certificate: the kernels run only when every product and partial sum is
//! exactly representable in both the integer accumulator and f32, in which
//! case the simulated path's f32 arithmetic is itself exact and the two
//! agree bit for bit. Anything else — off-grid values, formats wider than
//! 16 bits, non-power-of-two binary scales, certificate overflow — falls
//! back to the simulated GEMM. The trace counters `nn.fwd.flops.native` /
//! `nn.fwd.flops.simulated` record which path each layer's MACs took.
//!
//! The toggle: set `QNN_NATIVE=0` (or `off`/`false`) to disable dispatch
//! globally, or call [`set_native`] at runtime (used by the equivalence
//! tests to compare both paths in-process).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use qnn_quant::packed::PackedWeights;
use qnn_quant::Quantizer;

/// Trace counter: forward MAC flops executed by native integer kernels.
pub(crate) const CTR_FLOPS_NATIVE: &str = "nn.fwd.flops.native";
/// Trace counter: forward MAC flops executed by the simulated f32 path.
pub(crate) const CTR_FLOPS_SIMULATED: &str = "nn.fwd.flops.simulated";

/// Runtime override: 0 = none (env/default), 1 = force on, 2 = force off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("QNN_NATIVE").as_deref().map(str::trim),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Overrides native dispatch at runtime: `Some(true)` forces it on,
/// `Some(false)` forces it off, `None` restores the `QNN_NATIVE`
/// environment default (enabled unless set to `0`/`off`/`false`).
pub fn set_native(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether layers may dispatch to the native quantized kernels.
pub fn native_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Cached packed weights for one layer, invalidated by comparing the exact
/// bit pattern of the quantized weights (and the quantizer's identity) —
/// an SGD step, a swapped quantizer or an injected weight fault all change
/// the bits and force a repack. `plan == None` caches "known unpackable"
/// so hopeless formats don't re-run the packer every batch.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    src_bits: Vec<u32>,
    quant_desc: String,
    plan: Option<PackedWeights>,
    populated: bool,
}

impl PlanCache {
    /// Drops any cached plan (e.g. when the quantizer is replaced).
    pub(crate) fn clear(&mut self) {
        self.src_bits.clear();
        self.quant_desc.clear();
        self.plan = None;
        self.populated = false;
    }

    /// The plan for quantized weights `qw` (`rows×cols` row-major) under
    /// quantizer `q`, rebuilding the pack only when the bits changed.
    pub(crate) fn plan_for(
        &mut self,
        q: &dyn Quantizer,
        rows: usize,
        cols: usize,
        qw: &[f32],
    ) -> Option<&PackedWeights> {
        let desc = q.describe();
        let fresh = self.populated
            && self.quant_desc == desc
            && self.src_bits.len() == qw.len()
            && self
                .src_bits
                .iter()
                .zip(qw.iter())
                .all(|(&b, &v)| b == v.to_bits());
        if !fresh {
            self.src_bits.clear();
            self.src_bits.extend(qw.iter().map(|v| v.to_bits()));
            self.quant_desc = desc;
            self.plan = q
                .bit_codec()
                .and_then(|codec| PackedWeights::pack(&codec, rows, cols, qw));
            self.populated = true;
        }
        self.plan.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::Fixed;
    use std::sync::Arc;

    #[test]
    fn toggle_round_trips() {
        set_native(Some(false));
        assert!(!native_enabled());
        set_native(Some(true));
        assert!(native_enabled());
        set_native(None);
    }

    #[test]
    fn plan_cache_invalidates_on_bit_change() {
        let f = Fixed::new(8, 4).unwrap();
        let q: Arc<dyn Quantizer + Send + Sync> = Arc::new(f);
        let mut cache = PlanCache::default();
        let w = [0.5f32, -0.25, 1.0, 0.0];
        assert!(cache.plan_for(q.as_ref(), 2, 2, &w).is_some());
        // Same bits → cached plan survives.
        assert!(cache.plan_for(q.as_ref(), 2, 2, &w).is_some());
        // Changed bits → repack; off-grid value → plan gone.
        let bad = [0.5f32, -0.25, 1.0, 0.1];
        assert!(cache.plan_for(q.as_ref(), 2, 2, &bad).is_none());
        // And recovers when bits return to the grid.
        assert!(cache.plan_for(q.as_ref(), 2, 2, &w).is_some());
    }
}
