#![warn(missing_docs)]

//! # qnn-nn — convolutional networks with quantization-aware training
//!
//! A from-scratch CPU CNN framework sized for the DATE 2017 paper's
//! workloads: [`Conv2d`](layers::Conv2d), [`Dense`](layers::Dense),
//! max/avg pooling and ReLU layers composed into a sequential [`Network`],
//! trained with [`Sgd`] (momentum + weight decay) against softmax
//! cross-entropy.
//!
//! The paper's train-time methodology (§IV-A) is implemented exactly:
//!
//! 1. **Full-precision pre-training**, then low-precision retraining
//!    initialized from the converged FP32 weights (Tann et al.).
//! 2. **Shadow weights** — the forward pass uses quantized weights while
//!    SGD updates a full-precision copy through a straight-through
//!    estimator (Courbariaux et al.), so sub-step updates accumulate.
//!
//! [`zoo`] holds the paper's benchmark architectures (Table I: LeNet,
//! ConvNet, ALEX; Table II: ALEX+, ALEX++), and [`arch`] both builds
//! runnable networks from declarative specs and derives the per-layer
//! MAC/parameter workload the accelerator model in `qnn-accel` consumes.
//!
//! ## Example
//!
//! ```
//! use qnn_nn::{arch::NetworkSpec, Network};
//!
//! let spec = NetworkSpec::new("tiny", (1, 8, 8))
//!     .conv(4, 3, 1, 1)
//!     .relu()
//!     .max_pool(2, 2)
//!     .dense(10);
//! let net = Network::build(&spec, 42)?;
//! assert_eq!(net.param_count(), 4 * 9 + 4 + (4 * 16 * 10 + 10));
//! # Ok::<(), qnn_nn::NnError>(())
//! ```

mod error;
mod native;
mod network;
mod optim;
mod param;
mod trainer;

pub mod arch;
pub mod checkpoint;
pub mod layers;
pub mod loss;
pub mod memory;
pub mod workload;
pub mod zoo;

pub use checkpoint::TrainCheckpoint;
pub use error::NnError;
pub use native::{native_enabled, set_native};
pub use network::{ActivationCalibration, Mode, Network};
pub use optim::Sgd;
pub use param::Param;
pub use trainer::{QatConfig, TrainOutcome, TrainReport, Trainer, TrainerConfig};
