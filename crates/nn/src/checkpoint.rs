//! Crash-safe trainer checkpoints.
//!
//! A [`TrainCheckpoint`] freezes everything the epoch loop needs to
//! continue bit-identically: completed-epoch count, the decayed learning
//! rate, the shuffle RNG's raw state, per-epoch losses, and every
//! parameter's value *and* momentum buffer (f32 bit patterns, so the
//! round trip is exact). It rides in a `QNNF` container
//! ([`qnn_faults::store`]): versioned header, little-endian payload,
//! CRC32 trailer, written atomically.
//!
//! [`save`](TrainCheckpoint::save) rotates any existing file to `*.bak`
//! first, and [`load_latest`](TrainCheckpoint::load_latest) falls back to
//! that rotation when the primary file is corrupt — so a crash *during*
//! checkpointing costs at most one epoch of progress, never the run.

use std::path::{Path, PathBuf};

use qnn_faults::store::{self, wire, KIND_TRAIN_CHECKPOINT};
use qnn_faults::StoreError;
use qnn_tensor::{Shape, Tensor};

use crate::error::NnError;
use crate::network::Network;

/// Largest tensor rank the decoder accepts; real parameters are rank ≤ 4.
const MAX_RANK: u64 = 8;

/// A frozen snapshot of one training run between epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Epochs fully completed (the next epoch to run).
    pub epoch: u32,
    /// Learning rate in effect for the next epoch (post-decay).
    pub lr: f32,
    /// Training accuracy over the last completed epoch — what a finished
    /// run reports, so resuming a checkpoint whose schedule is already
    /// complete reproduces the original report exactly.
    pub last_epoch_accuracy: f32,
    /// Raw xoshiro state of the shuffle RNG at the epoch boundary.
    pub rng_state: [u64; 4],
    /// The sample-order permutation after the last epoch's shuffle —
    /// each epoch shuffles the *previous* permutation in place, so the
    /// resumed loop must continue from it, not from identity.
    pub order: Vec<u32>,
    /// Mean training loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Per-parameter `(value, velocity)` pairs, in layer order.
    pub params: Vec<(Tensor, Tensor)>,
}

impl TrainCheckpoint {
    /// Captures the current state of `net` plus the trainer's loop state.
    pub fn capture(
        net: &Network,
        epoch: u32,
        lr: f32,
        last_epoch_accuracy: f32,
        rng_state: [u64; 4],
        order: &[usize],
        epoch_losses: &[f32],
    ) -> Self {
        TrainCheckpoint {
            epoch,
            lr,
            last_epoch_accuracy,
            rng_state,
            order: order.iter().map(|&i| i as u32).collect(),
            epoch_losses: epoch_losses.to_vec(),
            params: net
                .params()
                .iter()
                .map(|p| (p.value.clone(), p.velocity.clone()))
                .collect(),
        }
    }

    /// Restores parameter values and momentum buffers into `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointMismatch`] if the parameter list does
    /// not line up with this network.
    pub fn apply(&self, net: &mut Network) -> Result<(), NnError> {
        let mut params = net.params_mut();
        if params.len() != self.params.len() {
            return Err(NnError::CheckpointMismatch {
                reason: format!(
                    "{} parameter tensors for a network with {}",
                    self.params.len(),
                    params.len()
                ),
            });
        }
        for (p, (value, velocity)) in params.iter_mut().zip(self.params.iter()) {
            if p.value.shape() != value.shape() {
                return Err(NnError::CheckpointMismatch {
                    reason: format!(
                        "parameter shape {} vs checkpoint {}",
                        p.value.shape(),
                        value.shape()
                    ),
                });
            }
            p.value = value.clone();
            p.velocity = velocity.clone();
        }
        Ok(())
    }

    /// Serializes to the `QNNF` payload encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, self.epoch);
        wire::put_f32(&mut buf, self.lr);
        wire::put_f32(&mut buf, self.last_epoch_accuracy);
        for s in self.rng_state {
            wire::put_u64(&mut buf, s);
        }
        wire::put_u64(&mut buf, self.order.len() as u64);
        for &i in &self.order {
            wire::put_u32(&mut buf, i);
        }
        wire::put_f32_slice(&mut buf, &self.epoch_losses);
        wire::put_u64(&mut buf, self.params.len() as u64);
        for (value, velocity) in &self.params {
            put_tensor(&mut buf, value);
            put_tensor(&mut buf, velocity);
        }
        buf
    }

    /// Decodes a `QNNF` payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Store`] ([`StoreError::Malformed`]) on any
    /// structural inconsistency.
    pub fn decode(payload: &[u8]) -> Result<Self, NnError> {
        let mut r = wire::Reader::new(payload);
        let epoch = r.u32()?;
        let lr = r.f32()?;
        let last_epoch_accuracy = r.f32()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let n_order = r.count(r.remaining() as u64 / 4)?;
        let mut order = Vec::with_capacity(n_order);
        for _ in 0..n_order {
            order.push(r.u32()?);
        }
        let epoch_losses = r.f32_vec()?;
        let n_params = r.count(1 << 20)?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let value = read_tensor(&mut r)?;
            let velocity = read_tensor(&mut r)?;
            if value.shape() != velocity.shape() {
                return Err(StoreError::Malformed {
                    reason: format!(
                        "value shape {} disagrees with velocity shape {}",
                        value.shape(),
                        velocity.shape()
                    ),
                }
                .into());
            }
            params.push((value, velocity));
        }
        r.expect_end()?;
        Ok(TrainCheckpoint {
            epoch,
            lr,
            last_epoch_accuracy,
            rng_state,
            order,
            epoch_losses,
            params,
        })
    }

    /// Writes the checkpoint to `path` atomically, first rotating any
    /// existing file to `<path>.bak`.
    ///
    /// The rotation means a corrupted primary file (torn disk, injected
    /// fault) still leaves the previous epoch's state recoverable via
    /// [`load_latest`](Self::load_latest).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Store`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), NnError> {
        if path.exists() {
            std::fs::rename(path, bak_path(path))
                .map_err(|e| StoreError::io("rotate", path, &e))?;
        }
        store::write_atomic(path, KIND_TRAIN_CHECKPOINT, &self.encode())?;
        Ok(())
    }

    /// Loads and validates the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Store`] on missing, truncated or corrupted
    /// files.
    pub fn load(path: &Path) -> Result<Self, NnError> {
        Self::decode(&store::read(path, KIND_TRAIN_CHECKPOINT)?)
    }

    /// Loads `path`, falling back to its `.bak` rotation when the
    /// primary is corrupt. Returns the checkpoint and whether the
    /// fallback was used.
    ///
    /// # Errors
    ///
    /// Returns the *primary* file's error when no fallback rescues the
    /// load (so "file not found" surfaces as such, not as a `.bak`
    /// error).
    pub fn load_latest(path: &Path) -> Result<(Self, bool), NnError> {
        match Self::load(path) {
            Ok(cp) => Ok((cp, false)),
            Err(primary) => {
                // Any primary failure is worth a rescue attempt: corruption
                // obviously, but also a *missing* primary — save() rotates
                // before writing, so a crash in that window leaves only the
                // `.bak` file behind.
                if let Ok(cp) = Self::load(&bak_path(path)) {
                    return Ok((cp, true));
                }
                Err(primary)
            }
        }
    }
}

/// `<path>.bak` — the rotation target used by [`TrainCheckpoint::save`].
pub fn bak_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".bak");
    path.with_file_name(name)
}

/// Appends a tensor: rank, dims, then raw f32 bit patterns.
///
/// Public because the serving model-bank checkpoint (`qnn-serve`) rides
/// the same tensor encoding inside its own QNNF payload kind.
pub fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    let dims = t.shape().dims();
    wire::put_u64(buf, dims.len() as u64);
    for &d in dims {
        wire::put_u64(buf, d as u64);
    }
    for &v in t.as_slice() {
        wire::put_f32(buf, v);
    }
}

/// Reads a tensor written by [`put_tensor`].
pub fn read_tensor(r: &mut wire::Reader<'_>) -> Result<Tensor, NnError> {
    let rank = r.count(MAX_RANK)?;
    let mut dims = Vec::with_capacity(rank);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = r.count(u32::MAX as u64)?;
        len = len.checked_mul(d).ok_or_else(|| StoreError::Malformed {
            reason: "tensor element count overflows".to_string(),
        })?;
        dims.push(d);
    }
    if len > r.remaining() / 4 {
        return Err(StoreError::Malformed {
            reason: format!("tensor claims {len} elements, payload too short"),
        }
        .into());
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(r.f32()?);
    }
    Ok(Tensor::from_vec(Shape::new(&dims), data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::NetworkSpec;

    fn net(seed: u64) -> Network {
        Network::build(
            &NetworkSpec::new("cp", (1, 4, 4)).dense(6).relu().dense(3),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let n = net(5);
        let cp = TrainCheckpoint::capture(
            &n,
            3,
            0.025,
            0.75,
            [9, 8, 7, 6],
            &[2, 0, 1],
            &[1.5, 1.2, 0.9],
        );
        let back = TrainCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn apply_rejects_wrong_network() {
        let a = net(1);
        let cp = TrainCheckpoint::capture(&a, 0, 0.1, 0.0, [0; 4], &[], &[]);
        let mut other =
            Network::build(&NetworkSpec::new("other", (1, 4, 4)).dense(4).dense(3), 2).unwrap();
        assert!(matches!(
            cp.apply(&mut other),
            Err(NnError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_mismatched_velocity_shape() {
        let n = net(2);
        let cp = TrainCheckpoint::capture(&n, 0, 0.1, 0.0, [0; 4], &[], &[]);
        let mut payload = cp.encode();
        // Truncating the tail breaks the last tensor mid-stream.
        payload.truncate(payload.len() - 3);
        assert!(matches!(
            TrainCheckpoint::decode(&payload),
            Err(NnError::Store(StoreError::Malformed { .. }))
        ));
    }
}
