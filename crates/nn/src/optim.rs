use crate::network::Network;

/// Stochastic gradient descent with momentum and (decoupled-from-bias)
/// weight decay — the optimizer the paper's Caffe stack uses.
///
/// Update per parameter: `v ← μ·v − lr·(g + λ·w)`, `w ← w + v`, with the
/// decay term applied only to parameters flagged `decay` (weights, not
/// biases).
///
/// ```
/// use qnn_nn::Sgd;
///
/// let opt = Sgd::new(0.01).momentum(0.9).weight_decay(5e-4);
/// assert_eq!(opt.lr(), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate (no momentum, no decay).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Sets the momentum coefficient μ (0 disables).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= mu < 1`.
    pub fn momentum(mut self, mu: f32) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        self.momentum = mu;
        self
    }

    /// Sets the L2 weight-decay coefficient λ.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn weight_decay(mut self, lambda: f32) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "weight decay must be non-negative"
        );
        self.weight_decay = lambda;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `net` using the
    /// gradients deposited by the last backward pass.
    pub fn step(&self, net: &mut Network) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        for p in net.params_mut() {
            let decay = if p.decay { wd } else { 0.0 };
            let value = p.value.as_slice().to_vec();
            let grads = p.grad.as_slice();
            let vel = p.velocity.as_mut_slice();
            for ((v, &g), &w) in vel.iter_mut().zip(grads.iter()).zip(value.iter()) {
                *v = mu * *v - lr * (g + decay * w);
            }
            let vel = p.velocity.as_slice().to_vec();
            for (w, v) in p.value.as_mut_slice().iter_mut().zip(vel.iter()) {
                *w += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::NetworkSpec;
    use crate::network::{Mode, Network};
    use qnn_tensor::{Shape, Tensor};

    fn net() -> Network {
        Network::build(&NetworkSpec::new("t", (1, 4, 4)).dense(2), 3).unwrap()
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut n = net();
        let x = Tensor::ones(Shape::d4(1, 1, 4, 4));
        let y = n.forward(&x, Mode::Train).unwrap();
        n.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let w_before = n.params()[0].value.clone();
        let g = n.params()[0].grad.clone();
        Sgd::new(0.1).step(&mut n);
        let w_after = &n.params()[0].value;
        for i in 0..w_before.len() {
            let want = w_before.as_slice()[i] - 0.1 * g.as_slice()[i];
            assert!((w_after.as_slice()[i] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates() {
        let mut n = net();
        let x = Tensor::ones(Shape::d4(1, 1, 4, 4));
        let opt = Sgd::new(0.1).momentum(0.9);
        // Two identical steps: second update is larger in magnitude.
        let y = n.forward(&x, Mode::Train).unwrap();
        n.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let w0 = n.params()[0].value.clone();
        opt.step(&mut n);
        let w1 = n.params()[0].value.clone();
        let y = n.forward(&x, Mode::Train).unwrap();
        n.backward(&Tensor::ones(y.shape().clone())).unwrap();
        opt.step(&mut n);
        let w2 = n.params()[0].value.clone();
        let d1 = (w1.sub(&w0).unwrap()).as_slice()[0].abs();
        let d2 = (w2.sub(&w1).unwrap()).as_slice()[0].abs();
        assert!(d2 > d1, "momentum should accelerate: d1={d1} d2={d2}");
    }

    #[test]
    fn weight_decay_shrinks_weights_not_biases() {
        let mut n = net();
        // zero gradients, pure decay
        n.zero_grads();
        {
            let mut params = n.params_mut();
            params[1].value = Tensor::ones(Shape::d1(2)); // bias
        }
        let w0: f32 = n.params()[0].value.as_slice().iter().map(|v| v.abs()).sum();
        Sgd::new(0.1).weight_decay(0.5).step(&mut n);
        let w1: f32 = n.params()[0].value.as_slice().iter().map(|v| v.abs()).sum();
        assert!(w1 < w0);
        assert_eq!(n.params()[1].value.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        Sgd::new(0.0);
    }
}
