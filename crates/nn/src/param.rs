use qnn_tensor::{Shape, Tensor};

/// A trainable parameter tensor with its gradient and momentum buffers.
///
/// `value` is the **full-precision shadow copy**: under quantization-aware
/// training the forward pass never reads it directly — layers quantize it
/// first — but SGD always updates it, so gradient contributions smaller
/// than one quantization step still accumulate (the paper's second
/// train-time technique, after Courbariaux et al.).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Full-precision (shadow) value.
    pub value: Tensor,
    /// Gradient from the most recent backward pass.
    pub grad: Tensor,
    /// Momentum buffer for SGD.
    pub velocity: Tensor,
    /// Whether weight decay applies (true for weights, false for biases —
    /// the Caffe convention the paper's training stack follows).
    pub decay: bool,
}

impl Param {
    /// Wraps an initial value; gradient and velocity start at zero.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        let velocity = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            velocity,
            decay,
        }
    }

    /// A zero-initialized parameter of the given shape (for biases).
    pub fn zeros(shape: Shape, decay: bool) -> Self {
        Param::new(Tensor::zeros(shape), decay)
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter has zero elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the gradient to zero (called before each backward pass).
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_velocity() {
        let p = Param::new(Tensor::ones(Shape::d2(2, 2)), true);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.velocity.sum(), 0.0);
        assert_eq!(p.len(), 4);
        assert!(p.decay);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::zeros(Shape::d1(3), false);
        p.grad = Tensor::ones(Shape::d1(3));
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
