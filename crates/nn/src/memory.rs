//! Parameter and feature-map memory footprints.
//!
//! The paper (§V-B) reports network parameter memory at full precision and
//! observes that "the memory footprint of each network reduces from 2× to
//! 32×" across its precision sweep — the footprint is linear in weight
//! bits. These helpers compute that table for any spec × precision.

use qnn_quant::Precision;

use crate::arch::NetworkSpec;
use crate::error::NnError;

/// Memory footprint of one network at one precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Weight + bias storage, in bytes (bit-exact, rounded up per tensor).
    pub parameter_bytes: u64,
    /// Largest single feature map (the peak buffer requirement), in bytes.
    pub peak_activation_bytes: u64,
    /// Input image storage, in bytes.
    pub input_bytes: u64,
}

impl MemoryFootprint {
    /// Parameter memory in KiB (the unit the paper quotes).
    pub fn parameter_kib(&self) -> f64 {
        self.parameter_bytes as f64 / 1024.0
    }
}

/// Computes the footprint of `spec` stored at `precision`.
///
/// Weights use `precision.weight_bits()` per value; activations and input
/// use `precision.input_bits()`. Biases are counted at 32 bits regardless
/// (accumulator precision — see `qnn-nn` layer docs).
///
/// # Errors
///
/// Returns [`NnError::InvalidSpec`] if the spec does not validate.
pub fn footprint(spec: &NetworkSpec, precision: Precision) -> Result<MemoryFootprint, NnError> {
    let summaries = spec.summaries()?;
    let wbits = precision.weight_bits() as u64;
    let abits = precision.input_bits() as u64;
    let mut param_bits = 0u64;
    let mut peak_act = 0u64;
    for s in &summaries {
        if s.params > 0 {
            // Separate weights from biases: biases equal the output channel
            // count (conv) or unit count (dense).
            let biases = match s.spec {
                crate::arch::LayerSpec::Conv { out_channels, .. } => out_channels as u64,
                crate::arch::LayerSpec::Dense { units } => units as u64,
                _ => 0,
            };
            let weights = s.params as u64 - biases;
            param_bits += weights * wbits + biases * 32;
        }
        peak_act = peak_act.max(s.output.len() as u64 * abits);
    }
    let (c, h, w) = spec.input();
    Ok(MemoryFootprint {
        parameter_bytes: param_bits.div_ceil(8),
        peak_activation_bytes: peak_act.div_ceil(8),
        input_bytes: ((c * h * w) as u64 * abits).div_ceil(8),
    })
}

/// The footprint-reduction factor of `precision` relative to float32
/// parameters (the paper's "2× to 32×" claim).
///
/// # Errors
///
/// Returns [`NnError::InvalidSpec`] if the spec does not validate.
pub fn reduction_vs_float32(spec: &NetworkSpec, precision: Precision) -> Result<f64, NnError> {
    let fp = footprint(spec, Precision::float32())?;
    let q = footprint(spec, precision)?;
    Ok(fp.parameter_bytes as f64 / q.parameter_bytes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn float32_footprint_is_4_bytes_per_param() {
        let spec = zoo::lenet();
        let f = footprint(&spec, Precision::float32()).unwrap();
        assert_eq!(f.parameter_bytes, spec.param_count() as u64 * 4);
    }

    #[test]
    fn reduction_tracks_weight_bits() {
        let spec = zoo::lenet();
        let r16 = reduction_vs_float32(&spec, Precision::fixed(16, 16)).unwrap();
        let r8 = reduction_vs_float32(&spec, Precision::fixed(8, 8)).unwrap();
        let r1 = reduction_vs_float32(&spec, Precision::binary()).unwrap();
        // Biases stay at 32 bits, so reductions fall slightly short of the
        // ideal 2×/4×/32×.
        assert!(r16 > 1.9 && r16 <= 2.0, "r16={r16}");
        assert!(r8 > 3.8 && r8 <= 4.0, "r8={r8}");
        assert!(r1 > 20.0 && r1 <= 32.0, "r1={r1}");
    }

    #[test]
    fn peak_activation_is_largest_feature_map() {
        let spec = zoo::lenet();
        // Largest map: conv1 output 20×24×24 = 11,520 values.
        let f = footprint(&spec, Precision::float32()).unwrap();
        assert_eq!(f.peak_activation_bytes, 11_520 * 4);
        let f16 = footprint(&spec, Precision::fixed(16, 16)).unwrap();
        assert_eq!(f16.peak_activation_bytes, 11_520 * 2);
    }

    #[test]
    fn input_bytes_match_shape() {
        let f = footprint(&zoo::alex(), Precision::fixed(8, 8)).unwrap();
        assert_eq!(f.input_bytes, 3 * 32 * 32);
    }
}
