use std::path::Path;

use qnn_quant::calibrate::Method;
use qnn_quant::Precision;
use qnn_tensor::{rng, Shape, Tensor};

use crate::checkpoint::TrainCheckpoint;
use crate::error::NnError;
use crate::loss::softmax_cross_entropy;
use crate::network::{ActivationCalibration, Mode, Network};
use crate::optim::Sgd;

/// Hyper-parameters for a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay (weights only).
    pub weight_decay: f32,
    /// Multiplicative LR decay applied after each epoch.
    pub lr_decay: f32,
    /// Whether the clipped straight-through estimator zeroes gradients of
    /// saturated shadow weights (QAT only; ignored at full precision).
    pub ste_clip: bool,
    /// Learning-rate multiplier for the QAT retraining phase. Retraining
    /// is a fine-tune of an already-converged model through a noisy
    /// (quantized) forward pass; the full pre-training rate destabilizes
    /// it, so [`Trainer::train_qat`] scales `lr` by this factor.
    pub qat_lr_factor: f32,
    /// Shuffle seed (training is deterministic given this seed).
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.85,
            ste_clip: true,
            qat_lr_factor: 0.2,
            seed: 0x5EED,
        }
    }
}

/// Whether a training run reached a usable model.
///
/// The paper reports `NA` rows where a precision "failed to converge"
/// (fixed-point (4,4) on SVHN/CIFAR, binary on SVHN); this enum is how the
/// harness reproduces those rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainOutcome {
    /// Loss decreased and final accuracy beats chance by a clear margin.
    Converged,
    /// Loss became NaN/inf or accuracy stayed at chance level.
    Diverged,
}

impl TrainOutcome {
    /// The single numeric-failure predicate used everywhere in the
    /// trainer: `NaN`, `+inf` and `-inf` (overflow in either direction)
    /// all count as failed.
    pub fn loss_failed(loss: f32) -> bool {
        !loss.is_finite()
    }

    /// The consolidated divergence judgement: any numerically failed
    /// epoch loss, or an accuracy not clearly above `chance`, is
    /// [`Diverged`](TrainOutcome::Diverged).
    pub fn judge(epoch_losses: &[f32], accuracy: f32, chance: f32) -> TrainOutcome {
        if epoch_losses.iter().copied().any(Self::loss_failed) || accuracy < chance * 1.5 {
            TrainOutcome::Diverged
        } else {
            TrainOutcome::Converged
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy over the final epoch.
    pub train_accuracy: f32,
    /// Convergence judgement.
    pub outcome: TrainOutcome,
    /// Validation accuracy per epoch (only populated by
    /// [`Trainer::train_with_validation`]).
    pub val_accuracies: Vec<f32>,
    /// Epoch whose weights were selected (best validation accuracy); only
    /// populated by [`Trainer::train_with_validation`].
    pub best_epoch: Option<usize>,
}

/// Quantization-aware-training configuration: the precision to install and
/// how to calibrate it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QatConfig {
    /// Target precision.
    pub precision: Precision,
    /// Range-calibration rule.
    pub method: Method,
    /// Per-layer vs. global activation radix.
    pub activation_calibration: ActivationCalibration,
}

impl QatConfig {
    /// QAT at the given precision with the paper's defaults (max-abs
    /// calibration, per-layer activation radix).
    pub fn new(precision: Precision) -> Self {
        QatConfig {
            precision,
            method: Method::MaxAbs,
            activation_calibration: ActivationCalibration::default(),
        }
    }
}

/// Mini-batch SGD training driver.
///
/// One `Trainer` can run both phases of the paper's methodology:
/// [`train`](Trainer::train) for full-precision pre-training and
/// [`train_qat`](Trainer::train_qat) for the quantized retraining pass that
/// starts from those weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `batch_size == 0`,
    /// `epochs == 0`, or the learning rate is not finite and positive.
    pub fn new(config: TrainerConfig) -> Result<Self, NnError> {
        if config.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                reason: "batch size must be positive".to_string(),
            });
        }
        if config.epochs == 0 {
            return Err(NnError::InvalidConfig {
                reason: "epochs must be positive".to_string(),
            });
        }
        if !config.lr.is_finite() || config.lr <= 0.0 {
            return Err(NnError::InvalidConfig {
                reason: format!("learning rate {} must be finite and positive", config.lr),
            });
        }
        Ok(Trainer { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `net` on `(images, labels)`.
    ///
    /// `images` is `(N, C, H, W)`; `labels` holds one class index per
    /// sample.
    ///
    /// # Errors
    ///
    /// Propagates network and label errors; a numerically diverged run is
    /// *not* an error — it is reported via [`TrainOutcome::Diverged`].
    pub fn train(
        &self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<TrainReport, NnError> {
        self.train_from(net, images, labels, None, None)
    }

    /// Trains like [`train`](Trainer::train) while checkpointing to
    /// `checkpoint` after every epoch, resuming from that file (or its
    /// `.bak` rotation) when it already holds a usable snapshot.
    ///
    /// An interrupted run resumed through this method produces a report
    /// and final weights **bit-identical** to an uninterrupted one: the
    /// checkpoint carries parameter values, momentum buffers, the decayed
    /// learning rate and the raw shuffle-RNG state.
    ///
    /// # Errors
    ///
    /// Propagates training errors; an existing-but-damaged checkpoint
    /// with no usable `.bak` fallback is a typed [`NnError::Store`], a
    /// snapshot from a different network or schedule is
    /// [`NnError::CheckpointMismatch`]. A checkpoint that is simply
    /// absent starts a fresh run.
    pub fn train_resumable(
        &self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
        checkpoint: &Path,
    ) -> Result<TrainReport, NnError> {
        let resume = match TrainCheckpoint::load_latest(checkpoint) {
            Ok((cp, fell_back)) => {
                qnn_trace::counter!("checkpoint.resumes", 1);
                if fell_back {
                    qnn_trace::counter!("checkpoint.fallbacks", 1);
                }
                Some(cp)
            }
            Err(e) => {
                let present =
                    checkpoint.exists() || crate::checkpoint::bak_path(checkpoint).exists();
                if present {
                    // A file is there but unusable: surface the typed
                    // error instead of silently restarting (which would
                    // discard real progress).
                    return Err(e);
                }
                None
            }
        };
        self.train_from(net, images, labels, resume, Some(checkpoint))
    }

    /// The single epoch-loop engine behind [`train`](Trainer::train) and
    /// [`train_resumable`](Trainer::train_resumable).
    fn train_from(
        &self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
        resume: Option<TrainCheckpoint>,
        save_to: Option<&Path>,
    ) -> Result<TrainReport, NnError> {
        let n = images.shape().dim(0);
        if labels.len() != n {
            return Err(NnError::InvalidLabels {
                reason: format!("{} labels for {} images", labels.len(), n),
            });
        }
        let quantized = net.is_quantized();
        let mut order: Vec<usize> = (0..n).collect();
        let (start_epoch, mut opt, mut shuffle_rng, mut epoch_losses, mut last_accuracy) =
            match resume {
                Some(cp) => {
                    if cp.epoch as usize > self.config.epochs {
                        return Err(NnError::CheckpointMismatch {
                            reason: format!(
                                "checkpoint at epoch {} beyond the {}-epoch schedule",
                                cp.epoch, self.config.epochs
                            ),
                        });
                    }
                    if cp.epoch_losses.len() != cp.epoch as usize {
                        return Err(NnError::CheckpointMismatch {
                            reason: format!(
                                "{} epoch losses recorded for {} completed epochs",
                                cp.epoch_losses.len(),
                                cp.epoch
                            ),
                        });
                    }
                    if !cp.lr.is_finite() || cp.lr <= 0.0 {
                        return Err(NnError::CheckpointMismatch {
                            reason: format!("checkpoint learning rate {} unusable", cp.lr),
                        });
                    }
                    if cp.epoch > 0 {
                        if cp.order.len() != n {
                            return Err(NnError::CheckpointMismatch {
                                reason: format!(
                                    "shuffle order over {} samples for a {}-sample set",
                                    cp.order.len(),
                                    n
                                ),
                            });
                        }
                        order = cp.order.iter().map(|&i| i as usize).collect();
                    }
                    cp.apply(net)?;
                    let opt = Sgd::new(cp.lr)
                        .momentum(self.config.momentum)
                        .weight_decay(self.config.weight_decay);
                    (
                        cp.epoch as usize,
                        opt,
                        rng::Rng::from_state(cp.rng_state),
                        cp.epoch_losses,
                        cp.last_epoch_accuracy,
                    )
                }
                None => (
                    0,
                    Sgd::new(self.config.lr)
                        .momentum(self.config.momentum)
                        .weight_decay(self.config.weight_decay),
                    rng::seeded(self.config.seed),
                    Vec::with_capacity(self.config.epochs),
                    0.0,
                ),
            };
        for epoch in start_epoch..self.config.epochs {
            qnn_trace::span!("epoch");
            shuffle_rng.shuffle(&mut order);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            let mut correct = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let (bx, by) = gather_batch(images, labels, chunk)?;
                net.zero_grads();
                let logits = net.forward(&bx, Mode::Train)?;
                let out = softmax_cross_entropy(&logits, &by)?;
                if TrainOutcome::loss_failed(out.loss) {
                    return Ok(TrainReport {
                        epoch_losses,
                        train_accuracy: 0.0,
                        outcome: TrainOutcome::Diverged,
                        val_accuracies: Vec::new(),
                        best_epoch: None,
                    });
                }
                net.backward(&out.grad)?;
                if quantized && self.config.ste_clip {
                    net.apply_ste_clip()?;
                }
                opt.step(net);
                loss_sum += out.loss as f64;
                batches += 1;
                correct += out.correct;
            }
            let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
            epoch_losses.push(mean_loss);
            last_accuracy = correct as f32 / n.max(1) as f32;
            opt.set_lr((opt.lr() * self.config.lr_decay).max(1e-6));
            if let Some(path) = save_to {
                TrainCheckpoint::capture(
                    net,
                    (epoch + 1) as u32,
                    opt.lr(),
                    last_accuracy,
                    shuffle_rng.state(),
                    &order,
                    &epoch_losses,
                )
                .save(path)?;
            }
        }
        let classes = net.spec().num_classes().unwrap_or(2) as f32;
        let outcome = TrainOutcome::judge(&epoch_losses, last_accuracy, 1.0 / classes);
        Ok(TrainReport {
            epoch_losses,
            train_accuracy: last_accuracy,
            outcome,
            val_accuracies: Vec::new(),
            best_epoch: None,
        })
    }

    /// Trains with per-epoch validation and **best-epoch selection**: after
    /// every epoch the network is scored on `(val_images, val_labels)` —
    /// the 10 %-per-class split the paper carves from the test pool
    /// (§V-A) — and at the end the weights of the best-validating epoch
    /// are restored.
    ///
    /// Implemented as repeated single-epoch [`train`](Trainer::train)
    /// calls with a continued learning-rate schedule (momentum buffers
    /// restart at epoch boundaries, a minor difference from a monolithic
    /// run).
    ///
    /// # Errors
    ///
    /// Propagates network and label errors.
    pub fn train_with_validation(
        &self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
        val_images: &Tensor,
        val_labels: &[usize],
    ) -> Result<TrainReport, NnError> {
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut val_accuracies = Vec::with_capacity(self.config.epochs);
        let mut best: Option<(usize, f32, Vec<Tensor>)> = None;
        let mut last_train_acc = 0.0f32;
        for epoch in 0..self.config.epochs {
            // Built directly: the parent config is already validated and
            // the per-epoch overrides cannot invalidate it.
            let one = Trainer {
                config: TrainerConfig {
                    epochs: 1,
                    lr: self.config.lr * self.config.lr_decay.powi(epoch as i32),
                    seed: self.config.seed.wrapping_add(epoch as u64),
                    ..self.config
                },
            };
            let report = one.train(net, images, labels)?;
            let numeric_failure = report
                .epoch_losses
                .iter()
                .copied()
                .any(TrainOutcome::loss_failed)
                || report.epoch_losses.is_empty();
            epoch_losses.extend(report.epoch_losses);
            last_train_acc = report.train_accuracy;
            if numeric_failure {
                return Ok(TrainReport {
                    epoch_losses,
                    train_accuracy: 0.0,
                    outcome: TrainOutcome::Diverged,
                    val_accuracies,
                    best_epoch: None,
                });
            }
            let val_acc = self.evaluate(net, val_images, val_labels)?;
            val_accuracies.push(val_acc);
            if best.as_ref().is_none_or(|(_, b, _)| val_acc > *b) {
                best = Some((epoch, val_acc, net.state_dict()));
            }
        }
        let classes = net.spec().num_classes().unwrap_or(2) as f32;
        let (best_epoch, best_val) = if let Some((epoch, acc, state)) = best {
            net.load_state(&state)?;
            (Some(epoch), acc)
        } else {
            (None, 0.0)
        };
        let outcome = TrainOutcome::judge(&[], best_val, 1.0 / classes);
        Ok(TrainReport {
            epoch_losses,
            train_accuracy: last_train_acc,
            outcome,
            val_accuracies,
            best_epoch,
        })
    }

    /// Quantization-aware retraining: installs `qat.precision` (calibrated
    /// on the first `calib` images), then trains with shadow weights.
    ///
    /// Call on a network already trained at full precision to follow the
    /// paper's methodology.
    ///
    /// # Errors
    ///
    /// Propagates calibration and training errors.
    pub fn train_qat(
        &self,
        net: &mut Network,
        qat: &QatConfig,
        images: &Tensor,
        labels: &[usize],
        calib: usize,
    ) -> Result<TrainReport, NnError> {
        let n = images.shape().dim(0);
        let calib_n = calib.clamp(1, n);
        let idx: Vec<usize> = (0..calib_n).collect();
        let (calib_batch, _) = gather_batch(images, labels, &idx)?;
        net.set_precision(
            qat.precision,
            qat.method,
            &calib_batch,
            qat.activation_calibration,
        )?;
        let fine_tune = Trainer {
            config: TrainerConfig {
                lr: self.config.lr * self.config.qat_lr_factor,
                ..self.config
            },
        };
        fine_tune.train(net, images, labels)
    }

    /// [`train_qat`](Trainer::train_qat) for a **mixed** per-layer
    /// assignment: installs one precision per weighted layer
    /// ([`Network::set_precision_per_layer`], calibrated on the first
    /// `calib` images), then fine-tunes with shadow weights at the same
    /// reduced learning rate the uniform path uses — so a mixed cell and
    /// a uniform cell of a tuning sweep see identical training budgets.
    ///
    /// # Errors
    ///
    /// Propagates calibration and training errors.
    pub fn train_qat_per_layer(
        &self,
        net: &mut Network,
        assignment: &[Precision],
        method: Method,
        images: &Tensor,
        labels: &[usize],
        calib: usize,
    ) -> Result<TrainReport, NnError> {
        let n = images.shape().dim(0);
        let calib_n = calib.clamp(1, n);
        let idx: Vec<usize> = (0..calib_n).collect();
        let (calib_batch, _) = gather_batch(images, labels, &idx)?;
        net.set_precision_per_layer(assignment, method, &calib_batch)?;
        let fine_tune = Trainer {
            config: TrainerConfig {
                lr: self.config.lr * self.config.qat_lr_factor,
                ..self.config
            },
        };
        fine_tune.train(net, images, labels)
    }

    /// Top-1 accuracy of `net` over a labelled set, evaluated in batches.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn evaluate(
        &self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<f32, NnError> {
        let n = images.shape().dim(0);
        if labels.len() != n {
            return Err(NnError::InvalidLabels {
                reason: format!("{} labels for {} images", labels.len(), n),
            });
        }
        qnn_trace::span!("evaluate");
        let mut correct = 0usize;
        let idx: Vec<usize> = (0..n).collect();
        for chunk in idx.chunks(self.config.batch_size) {
            let (bx, by) = gather_batch(images, labels, chunk)?;
            let preds = net.predict(&bx)?;
            correct += preds.iter().zip(by.iter()).filter(|(p, y)| p == y).count();
        }
        Ok(correct as f32 / n.max(1) as f32)
    }
}

/// Copies the rows of `images`/`labels` selected by `index` into a batch.
fn gather_batch(
    images: &Tensor,
    labels: &[usize],
    index: &[usize],
) -> Result<(Tensor, Vec<usize>), NnError> {
    let dims = images.shape().dims();
    if dims.len() != 4 {
        return Err(NnError::InvalidConfig {
            reason: format!(
                "image batch must be rank 4 (N, C, H, W), got {}",
                images.shape()
            ),
        });
    }
    let (c, h, w) = (dims[1], dims[2], dims[3]);
    let sample = c * h * w;
    let mut data = Vec::with_capacity(index.len() * sample);
    let src = images.as_slice();
    let mut by = Vec::with_capacity(index.len());
    for &i in index {
        data.extend_from_slice(&src[i * sample..(i + 1) * sample]);
        by.push(labels[i]);
    }
    Ok((Tensor::from_vec(Shape::d4(index.len(), c, h, w), data)?, by))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::NetworkSpec;

    /// A linearly separable two-class toy problem: class = brighter left
    /// or right half.
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut data = Vec::with_capacity(n * 16);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = r.gen_range(0..2usize);
            for row in 0..4 {
                let _ = row;
                for col in 0..4 {
                    let lit = if class == 0 { col < 2 } else { col >= 2 };
                    let base = if lit { 0.8 } else { 0.1 };
                    data.push(base + r.gen_range(-0.05f32..0.05));
                }
            }
            labels.push(class);
        }
        (
            Tensor::from_vec(Shape::d4(n, 1, 4, 4), data).unwrap(),
            labels,
        )
    }

    fn toy_net(seed: u64) -> Network {
        Network::build(
            &NetworkSpec::new("toy", (1, 4, 4)).dense(8).relu().dense(2),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn learns_separable_problem() {
        let (x, y) = toy_data(128, 1);
        let mut net = toy_net(2);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            ..TrainerConfig::default()
        })
        .unwrap();
        let report = trainer.train(&mut net, &x, &y).unwrap();
        assert_eq!(report.outcome, TrainOutcome::Converged);
        let acc = trainer.evaluate(&mut net, &x, &y).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
        // Loss decreased epoch over epoch (roughly).
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn qat_fixed8_matches_fp_on_easy_problem() {
        let (x, y) = toy_data(128, 3);
        let mut net = toy_net(4);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            ..TrainerConfig::default()
        })
        .unwrap();
        trainer.train(&mut net, &x, &y).unwrap();
        let fp_acc = trainer.evaluate(&mut net, &x, &y).unwrap();
        let qat = QatConfig::new(Precision::fixed(8, 8));
        let report = trainer.train_qat(&mut net, &qat, &x, &y, 32).unwrap();
        assert_eq!(report.outcome, TrainOutcome::Converged);
        let q_acc = trainer.evaluate(&mut net, &x, &y).unwrap();
        assert!(
            q_acc >= fp_acc - 0.05,
            "8-bit QAT accuracy {q_acc} vs FP {fp_acc}"
        );
    }

    #[test]
    fn evaluate_validates_labels() {
        let (x, _) = toy_data(8, 1);
        let mut net = toy_net(1);
        let trainer = Trainer::new(TrainerConfig::default()).unwrap();
        assert!(trainer.evaluate(&mut net, &x, &[0, 1]).is_err());
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = toy_data(64, 5);
        let cfg = TrainerConfig {
            epochs: 3,
            ..TrainerConfig::default()
        };
        let trainer = Trainer::new(cfg).unwrap();
        let mut a = toy_net(7);
        let mut b = toy_net(7);
        let ra = trainer.train(&mut a, &x, &y).unwrap();
        let rb = trainer.train(&mut b, &x, &y).unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn validation_selects_best_epoch() {
        let (x, y) = toy_data(96, 9);
        let (vx, vy) = toy_data(48, 10);
        let mut net = toy_net(11);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 6,
            batch_size: 16,
            lr: 0.1,
            ..TrainerConfig::default()
        })
        .unwrap();
        let report = trainer
            .train_with_validation(&mut net, &x, &y, &vx, &vy)
            .unwrap();
        assert_eq!(report.val_accuracies.len(), 6);
        assert_eq!(report.outcome, TrainOutcome::Converged);
        let best = report.best_epoch.unwrap();
        // The restored weights score exactly the recorded best accuracy.
        let acc = trainer.evaluate(&mut net, &vx, &vy).unwrap();
        assert!((acc - report.val_accuracies[best]).abs() < 1e-6);
        // And the best really is the max.
        for &v in &report.val_accuracies {
            assert!(report.val_accuracies[best] >= v);
        }
    }

    #[test]
    fn zero_batch_size_rejected() {
        let err = Trainer::new(TrainerConfig {
            batch_size: 0,
            ..TrainerConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err:?}");
        assert!(Trainer::new(TrainerConfig {
            epochs: 0,
            ..TrainerConfig::default()
        })
        .is_err());
        assert!(Trainer::new(TrainerConfig {
            lr: f32::NAN,
            ..TrainerConfig::default()
        })
        .is_err());
    }

    #[test]
    fn divergence_guard_covers_both_infinities() {
        // Regression: -inf and overflow-to-+inf losses must classify as
        // diverged through the one shared guard, not just NaN.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(TrainOutcome::loss_failed(bad), "{bad} not failed");
            assert_eq!(
                TrainOutcome::judge(&[1.0, bad], 0.9, 0.1),
                TrainOutcome::Diverged
            );
        }
        assert!(!TrainOutcome::loss_failed(3.25));
        assert_eq!(
            TrainOutcome::judge(&[1.0, 0.5], 0.9, 0.1),
            TrainOutcome::Converged
        );
        // Chance-level accuracy diverges even with finite losses.
        assert_eq!(
            TrainOutcome::judge(&[0.5], 0.12, 0.1),
            TrainOutcome::Diverged
        );
    }

    #[test]
    fn gather_batch_rejects_non_4d_images() {
        let images = Tensor::zeros(Shape::d2(4, 16));
        let err = gather_batch(&images, &[0, 1, 0, 1], &[0, 1]).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err:?}");
    }
}
