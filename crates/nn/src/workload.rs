//! Hardware-facing workload description.
//!
//! The accelerator model in `qnn-accel` does not run tensors — it schedules
//! *work*: how many multiply-accumulates, how many weight/input/output
//! values move through each buffer subsystem. A [`Workload`] is that view
//! of a [`NetworkSpec`], one record per
//! compute layer (pooling and ReLU ride along in the pipeline and cost no
//! NFU MACs, matching the DianNao-style design the paper adopts).

use crate::arch::{LayerSpec, NetworkSpec};
use crate::error::NnError;

/// The kind of compute a layer demands from the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Convolution: weights reused across output pixels.
    Conv,
    /// Fully connected: every weight read once per image.
    Dense,
    /// Pooling: data movement only, handled in the NFU's third stage.
    Pool,
    /// Elementwise nonlinearity: folded into the NFU pipeline.
    Activation,
}

/// Per-layer work record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerWork {
    /// Display name, e.g. `"conv1"`.
    pub name: String,
    /// Compute kind.
    pub kind: WorkKind,
    /// Multiply-accumulate count per image.
    pub macs: u64,
    /// Output neuron count (output elements).
    pub neurons: u64,
    /// Fan-in per neuron (synapses each neuron sums).
    pub synapses_per_neuron: u64,
    /// Input values read from the input buffer, per image.
    pub inputs: u64,
    /// Distinct weight values the layer owns.
    pub weights: u64,
    /// Output values written to the output buffer, per image.
    pub outputs: u64,
}

/// A network's complete work description for one inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Source network name.
    pub network: String,
    /// Number of input image values (C·H·W).
    pub input_values: u64,
    /// Per-layer records, in execution order.
    pub layers: Vec<LayerWork>,
}

impl Workload {
    /// Total MACs per image.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total distinct weight values across all layers.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weights).sum()
    }

    /// Total output-buffer writes per image.
    pub fn total_outputs(&self) -> u64 {
        self.layers.iter().map(|l| l.outputs).sum()
    }
}

impl NetworkSpec {
    /// Derives the accelerator workload for this architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if the spec does not validate.
    pub fn workload(&self) -> Result<Workload, NnError> {
        let summaries = self.summaries()?;
        let mut layers = Vec::new();
        let mut conv_idx = 0usize;
        let mut fc_idx = 0usize;
        let mut pool_idx = 0usize;
        let mut relu_idx = 0usize;
        for s in &summaries {
            let (name, kind) = match s.spec {
                LayerSpec::Conv { .. } => {
                    conv_idx += 1;
                    (format!("conv{conv_idx}"), WorkKind::Conv)
                }
                LayerSpec::Dense { .. } => {
                    fc_idx += 1;
                    (format!("fc{fc_idx}"), WorkKind::Dense)
                }
                LayerSpec::MaxPool { .. } | LayerSpec::AvgPool { .. } => {
                    pool_idx += 1;
                    (format!("pool{pool_idx}"), WorkKind::Pool)
                }
                LayerSpec::Relu => {
                    relu_idx += 1;
                    (format!("relu{relu_idx}"), WorkKind::Activation)
                }
            };
            let neurons = s.output.len() as u64;
            let synapses = s.macs.checked_div(neurons).unwrap_or(0);
            layers.push(LayerWork {
                name,
                kind,
                macs: s.macs,
                neurons,
                synapses_per_neuron: synapses,
                inputs: s.input.len() as u64,
                weights: s.params as u64,
                outputs: neurons,
            });
        }
        let (c, h, w) = self.input();
        Ok(Workload {
            network: self.name().to_string(),
            input_values: (c * h * w) as u64,
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_totals_match_spec() {
        let spec = NetworkSpec::new("t", (1, 12, 12))
            .conv(8, 3, 1, 0)
            .relu()
            .max_pool(2, 2)
            .dense(10);
        let w = spec.workload().unwrap();
        assert_eq!(w.total_macs(), spec.macs_per_image());
        assert_eq!(w.total_weights() as usize, spec.param_count());
        assert_eq!(w.input_values, 144);
    }

    #[test]
    fn layer_names_and_kinds() {
        let spec = NetworkSpec::new("t", (1, 12, 12))
            .conv(8, 3, 1, 0)
            .relu()
            .max_pool(2, 2)
            .conv(4, 3, 1, 1)
            .dense(10);
        let w = spec.workload().unwrap();
        let names: Vec<&str> = w.layers.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["conv1", "relu1", "pool1", "conv2", "fc1"]);
        assert_eq!(w.layers[0].kind, WorkKind::Conv);
        assert_eq!(w.layers[2].kind, WorkKind::Pool);
        assert_eq!(w.layers[4].kind, WorkKind::Dense);
    }

    #[test]
    fn synapses_per_neuron_is_fan_in() {
        let spec = NetworkSpec::new("t", (3, 8, 8)).conv(4, 3, 1, 1);
        let w = spec.workload().unwrap();
        assert_eq!(w.layers[0].synapses_per_neuron, 27); // 3 channels × 3×3
        let spec = NetworkSpec::new("t", (1, 4, 4)).dense(10);
        let w = spec.workload().unwrap();
        assert_eq!(w.layers[0].synapses_per_neuron, 16);
    }

    #[test]
    fn pool_and_relu_have_zero_macs() {
        let spec = NetworkSpec::new("t", (2, 8, 8)).relu().max_pool(2, 2);
        let w = spec.workload().unwrap();
        assert!(w.layers.iter().all(|l| l.macs == 0));
        assert_eq!(w.total_macs(), 0);
    }
}
