use std::sync::Arc;

use qnn_faults::{BufferKind, FaultInjector};
use qnn_quant::{calibrate, BitCodec, Precision, Scheme};
use qnn_tensor::Tensor;

use crate::arch::{LayerSpec, NetworkSpec};
use crate::error::NnError;
use crate::layers::{AvgPool2d, Conv2d, Dense, Layer, MaxPool2d, QuantizerHandle, Relu};
use crate::param::Param;

/// Whether a forward pass caches intermediates for backprop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Cache for a subsequent backward pass.
    Train,
    /// Inference only — no caches retained.
    Eval,
}

/// How activation quantizer ranges are assigned across layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivationCalibration {
    /// One radix point per feature-map tensor position (Ristretto's
    /// dynamic fixed point; what the paper's software stack does).
    #[default]
    PerLayer,
    /// A single radix point shared by every feature map — the paper's
    /// accelerator supports one radix position; per-layer radix support is
    /// the multi-radix architecture it names as future work.
    Global,
}

/// A sequential network: layers from a [`NetworkSpec`] plus optional
/// quantization state.
///
/// Quantization attaches in two places, mirroring the paper's hardware:
/// each weighted layer holds a *weight* quantizer (applied to the shadow
/// weights every forward pass), and the network holds *activation*
/// quantizers applied to the input image and to every layer output (the
/// values that traverse the accelerator's input/output buffer subsystems).
pub struct Network {
    spec: NetworkSpec,
    layers: Vec<Box<dyn Layer>>,
    /// `act_q[0]` quantizes the network input; `act_q[i+1]` the output of
    /// layer `i`. All `None` when running full precision.
    act_q: Vec<Option<QuantizerHandle>>,
    precision: Option<Precision>,
    /// One precision per weighted layer when a mixed assignment is
    /// installed ([`set_precision_per_layer`](Self::set_precision_per_layer));
    /// mutually exclusive with `precision`.
    per_layer: Option<Vec<Precision>>,
    /// When set, every forward pass corrupts each activation tensor after
    /// its quantization step — the `Bin` buffer fault model.
    act_faults: Option<FaultInjector>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("spec", &self.spec.name())
            .field("layers", &self.layers.len())
            .field("precision", &self.precision.map(|p| p.label()))
            .finish()
    }
}

impl Network {
    /// Instantiates a runnable network from a spec, seeding each layer's
    /// initializer deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if the spec does not validate.
    pub fn build(spec: &NetworkSpec, seed: u64) -> Result<Self, NnError> {
        let summaries = spec.summaries()?;
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(summaries.len());
        for s in &summaries {
            let layer_seed = qnn_tensor::rng::derive_seed(seed, s.index as u64);
            let layer: Box<dyn Layer> = match s.spec {
                LayerSpec::Conv {
                    out_channels,
                    kernel,
                    stride,
                    pad,
                } => Box::new(Conv2d::new(
                    s.input.dim(0),
                    out_channels,
                    kernel,
                    stride,
                    pad,
                    layer_seed,
                )),
                LayerSpec::Relu => Box::new(Relu::new()),
                LayerSpec::MaxPool {
                    kernel,
                    stride,
                    ceil,
                } => Box::new(MaxPool2d::new(kernel, stride, ceil)),
                LayerSpec::AvgPool {
                    kernel,
                    stride,
                    ceil,
                } => Box::new(AvgPool2d::new(kernel, stride, ceil)),
                LayerSpec::Dense { units } => {
                    Box::new(Dense::new(s.input.len(), units, layer_seed))
                }
            };
            layers.push(layer);
        }
        let n = layers.len();
        Ok(Network {
            spec: spec.clone(),
            layers,
            act_q: vec![None; n + 1],
            precision: None,
            per_layer: None,
            act_faults: None,
        })
    }

    /// The spec this network was built from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The installed precision, if uniformly quantized. `None` both for
    /// full-precision networks and for mixed per-layer assignments (see
    /// [`precision_per_layer`](Self::precision_per_layer)).
    pub fn precision(&self) -> Option<Precision> {
        self.precision
    }

    /// The installed per-layer assignment (one precision per weighted
    /// layer), if a mixed assignment is active.
    pub fn precision_per_layer(&self) -> Option<&[Precision]> {
        self.per_layer.as_deref()
    }

    /// Whether any quantizers are installed — uniform or per-layer.
    pub fn is_quantized(&self) -> bool {
        self.precision.is_some() || self.per_layer.is_some()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.params().iter().map(|p| p.len()).sum::<usize>())
            .sum()
    }

    fn check_input(&self, batch: &Tensor) -> Result<(), NnError> {
        let (c, h, w) = self.spec.input();
        let ok = batch.shape().rank() == 4
            && batch.shape().dim(1) == c
            && batch.shape().dim(2) == h
            && batch.shape().dim(3) == w;
        if !ok {
            return Err(NnError::InputMismatch {
                expected: (c, h, w),
                actual: batch.shape().to_string(),
            });
        }
        Ok(())
    }

    /// Runs the network on a batch `(N, C, H, W)`, returning logits
    /// `(N, classes)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputMismatch`] for a wrong batch shape, or any
    /// layer error.
    pub fn forward(&mut self, batch: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        self.check_input(batch)?;
        qnn_trace::counter!("nn.fwd.images", batch.shape().dim(0) as u64);
        let mut x = match &self.act_q[0] {
            Some(q) => q.quantize(batch),
            None => batch.clone(),
        };
        corrupt_activations(&mut self.act_faults, &self.act_q[0], &mut x);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            qnn_trace::span!("fwd:{}:{}", i, layer.name());
            x = layer.forward(&x, mode)?;
            if let Some(q) = &self.act_q[i + 1] {
                // Feature maps are the largest tensors in the pass; snap
                // them across the worker pool (bit-identical to serial) —
                // unless the layer already applied this quantizer through
                // its fused kernel epilogue.
                if !layer.output_quant_applied() {
                    qnn_quant::quantize_inplace_par(q.as_ref(), &mut x);
                }
            }
            corrupt_activations(&mut self.act_faults, &self.act_q[i + 1], &mut x);
        }
        Ok(x)
    }

    /// Runs a forward pass capturing the network input and every layer
    /// output (post-quantization) — the samples activation calibration
    /// needs.
    ///
    /// # Errors
    ///
    /// Same as [`forward`](Network::forward).
    pub fn forward_trace(&mut self, batch: &Tensor) -> Result<Vec<Tensor>, NnError> {
        self.check_input(batch)?;
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        let mut x = match &self.act_q[0] {
            Some(q) => q.quantize(batch),
            None => batch.clone(),
        };
        trace.push(x.clone());
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = layer.forward(&x, Mode::Eval)?;
            if let Some(q) = &self.act_q[i + 1] {
                if !layer.output_quant_applied() {
                    qnn_quant::quantize_inplace_par(q.as_ref(), &mut x);
                }
            }
            trace.push(x.clone());
        }
        Ok(trace)
    }

    /// Backpropagates a logits gradient, filling every parameter's `grad`.
    ///
    /// Activation quantizers backpropagate as straight-through (identity):
    /// the staircase's true zero derivative would stall learning.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] unless a [`Mode::Train`] forward
    /// pass preceded this call.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<(), NnError> {
        let mut g = grad_logits.clone();
        let last = self.layers.len().saturating_sub(1);
        for (j, layer) in self.layers.iter_mut().rev().enumerate() {
            qnn_trace::span!("bwd:{}:{}", last - j, layer.name());
            g = layer.backward(&g)?;
        }
        Ok(())
    }

    /// Class predictions for a batch.
    ///
    /// # Errors
    ///
    /// Same as [`forward`](Network::forward).
    pub fn predict(&mut self, batch: &Tensor) -> Result<Vec<usize>, NnError> {
        let logits = self.forward(batch, Mode::Eval)?;
        let n = logits.shape().dim(0);
        let k = logits.shape().dim(1);
        let data = logits.as_slice();
        Ok((0..n)
            .map(|i| {
                let row = &data[i * k..(i + 1) * k];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect())
    }

    /// Mutable access to every parameter, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Shared access to every parameter, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Clears every parameter gradient.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Snapshots all parameter values (shadow copies), in layer order.
    pub fn state_dict(&self) -> Vec<Tensor> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }

    /// Restores parameter values from a [`state_dict`](Network::state_dict)
    /// snapshot; momentum buffers are reset.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if the snapshot does not match this
    /// network's parameter list.
    pub fn load_state(&mut self, state: &[Tensor]) -> Result<(), NnError> {
        let mut params = self.params_mut();
        if params.len() != state.len() {
            return Err(NnError::InvalidSpec {
                network: "load_state".to_string(),
                reason: format!("{} tensors for {} parameters", state.len(), params.len()),
            });
        }
        for (p, t) in params.iter_mut().zip(state.iter()) {
            if p.value.shape() != t.shape() {
                return Err(NnError::InvalidSpec {
                    network: "load_state".to_string(),
                    reason: format!(
                        "shape mismatch: parameter {} vs snapshot {}",
                        p.value.shape(),
                        t.shape()
                    ),
                });
            }
            p.value = t.clone();
            p.velocity = Tensor::zeros(t.shape().clone());
        }
        Ok(())
    }

    /// Installs quantizers for `precision`, calibrating ranges from the
    /// current weights and a forward trace over `calib_batch`.
    ///
    /// This follows the paper's methodology: call it on a network whose
    /// weights were initialized from the converged full-precision model,
    /// then retrain (the shadow weights keep learning underneath the
    /// quantizers).
    ///
    /// # Errors
    ///
    /// Propagates calibration and forward-pass errors.
    pub fn set_precision(
        &mut self,
        precision: Precision,
        method: calibrate::Method,
        calib_batch: &Tensor,
        act_mode: ActivationCalibration,
    ) -> Result<(), NnError> {
        // Calibrate against unquantized behaviour.
        self.clear_precision();
        let trace = self.forward_trace(calib_batch)?;

        // Weight quantizers: per weighted layer, from its own shadow weights
        // (the paper allows an independent radix between parameters and data;
        // Ristretto further keys it per layer).
        for layer in &mut self.layers {
            let params = layer.params();
            if params.is_empty() {
                continue;
            }
            let weight = &params[0].value;
            let q = calibrate::scheme_for(precision.weights(), &[weight], method)?;
            let handle: QuantizerHandle = Arc::from(q);
            layer.set_weight_quantizer(Some(handle));
        }

        // Activation quantizers per slot (input + each layer output).
        match precision.activations() {
            Scheme::Float32 => { /* leave act_q as None */ }
            scheme => match act_mode {
                ActivationCalibration::PerLayer => {
                    for (i, t) in trace.iter().enumerate() {
                        let q = calibrate::scheme_for(scheme, &[t], method)?;
                        self.act_q[i] = Some(Arc::from(q));
                    }
                }
                ActivationCalibration::Global => {
                    let refs: Vec<&Tensor> = trace.iter().collect();
                    let q = calibrate::scheme_for(scheme, &refs, method)?;
                    let handle: QuantizerHandle = Arc::from(q);
                    for slot in &mut self.act_q {
                        *slot = Some(Arc::clone(&handle));
                    }
                }
            },
        }
        // Tell each layer which quantizer produced its input (`act_q[i]`
        // quantizes layer `i`'s input), so Dense/Conv2d can dispatch to the
        // native integer kernels when the format and certificate allow —
        // and which quantizer snaps its output (`act_q[i + 1]`), so the
        // native path can fuse that snap into the kernel epilogue.
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.set_input_quantizer(self.act_q[i].clone());
            layer.set_output_quantizer(self.act_q[i + 1].clone());
        }
        self.precision = Some(precision);
        Ok(())
    }

    /// Installs a **mixed** precision assignment: one [`Precision`] per
    /// weighted layer, calibrated exactly like
    /// [`set_precision`](Self::set_precision) but with every weighted
    /// layer carrying its own weight and activation formats — the search
    /// space of `qnn tune`. Each activation slot (network input and
    /// every layer output) is calibrated per layer with the activation
    /// scheme of the weighted layer that *consumes* it; slots after the
    /// last weighted layer use that layer's scheme. A `Float32`
    /// activation scheme leaves its slot unquantized.
    ///
    /// # Errors
    ///
    /// [`NnError::InvalidConfig`] when `assignment` does not have
    /// exactly one entry per weighted layer; otherwise propagates
    /// calibration and forward-pass errors.
    pub fn set_precision_per_layer(
        &mut self,
        assignment: &[Precision],
        method: calibrate::Method,
        calib_batch: &Tensor,
    ) -> Result<(), NnError> {
        let weighted: Vec<usize> = self
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.params().is_empty())
            .map(|(i, _)| i)
            .collect();
        if assignment.len() != weighted.len() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "per-layer assignment has {} precisions, network `{}` has {} weighted layers",
                    assignment.len(),
                    self.spec.name(),
                    weighted.len()
                ),
            });
        }
        // Calibrate against unquantized behaviour.
        self.clear_precision();
        let trace = self.forward_trace(calib_batch)?;

        // Weight quantizers: each weighted layer from its own assigned
        // format.
        let mut next = 0usize;
        for layer in &mut self.layers {
            if layer.params().is_empty() {
                continue;
            }
            let p = assignment[next];
            next += 1;
            let params = layer.params();
            let weight = &params[0].value;
            let q = calibrate::scheme_for(p.weights(), &[weight], method)?;
            let handle: QuantizerHandle = Arc::from(q);
            layer.set_weight_quantizer(Some(handle));
        }

        // Activation slots: slot `i` feeds layer `i`, so it takes the
        // activation scheme of the next weighted layer at or after `i` —
        // the format of the buffer that value would actually occupy.
        let slot_precision = |i: usize| -> Precision {
            match weighted.iter().position(|&li| li >= i) {
                Some(w) => assignment[w],
                None => assignment[assignment.len() - 1],
            }
        };
        for (i, t) in trace.iter().enumerate() {
            match slot_precision(i).activations() {
                Scheme::Float32 => { /* leave the slot as None */ }
                scheme => {
                    let q = calibrate::scheme_for(scheme, &[t], method)?;
                    self.act_q[i] = Some(Arc::from(q));
                }
            }
        }
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.set_input_quantizer(self.act_q[i].clone());
            layer.set_output_quantizer(self.act_q[i + 1].clone());
        }
        self.per_layer = Some(assignment.to_vec());
        Ok(())
    }

    /// Removes all quantizers, returning the network to full precision
    /// (shadow weights are untouched).
    pub fn clear_precision(&mut self) {
        for layer in &mut self.layers {
            layer.set_weight_quantizer(None);
            layer.set_input_quantizer(None);
            layer.set_output_quantizer(None);
        }
        for slot in &mut self.act_q {
            *slot = None;
        }
        self.precision = None;
        self.per_layer = None;
    }

    /// Applies the clipped straight-through estimator to every weighted
    /// layer: parameter gradients are zeroed where the shadow value lies
    /// outside its quantizer's representable range.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (impossible unless parameters were mutated
    /// inconsistently).
    pub fn apply_ste_clip(&mut self) -> Result<(), NnError> {
        for layer in &mut self.layers {
            let q = match layer.weight_quantizer() {
                Some(q) => Arc::clone(q),
                None => continue,
            };
            let params = layer.params_mut();
            for p in params {
                if !p.decay {
                    continue; // biases are not quantized
                }
                p.grad = qnn_quant::ste::clipped_pass_through(&p.value, &p.grad, q.as_ref())?;
            }
        }
        Ok(())
    }

    /// Flips bits of every weighted layer's stored weights through the
    /// layer's encoded representation, modelling soft errors in the
    /// accelerator's `SB` (synapse) buffer. Returns the flip count.
    ///
    /// Each layer's weight quantizer supplies the [`BitCodec`] targeted
    /// by the flips (sign/exponent/mantissa for float, integer bits for
    /// fixed point, exponent code for pow2, the sign bit for binary); an
    /// unquantized layer is treated as IEEE-754 binary32. Corrupted
    /// values land exactly on the format's grid, so subsequent
    /// fake-quantize passes leave the damage untouched. Biases are
    /// spared, matching the quantization scheme (only `decay` parameters
    /// are quantized).
    ///
    /// Injection is serial and draws only from `inj`, so the damage is
    /// reproducible at any thread count.
    pub fn inject_weight_faults(&mut self, inj: &mut FaultInjector) -> u64 {
        let mut flips = 0u64;
        for layer in &mut self.layers {
            let codec = layer
                .weight_quantizer()
                .and_then(|q| q.bit_codec())
                .unwrap_or(BitCodec::Float32);
            for p in layer.params_mut() {
                if !p.decay {
                    continue;
                }
                flips += inj.corrupt_slice(&codec, BufferKind::Weight, p.value.as_mut_slice());
            }
        }
        flips
    }

    /// Installs (or clears) the activation fault injector: when set,
    /// every forward pass corrupts each activation tensor right after
    /// its quantization point — the `Bin` (input-neuron) buffer fault
    /// model. Pass `None` to restore clean inference.
    pub fn set_activation_faults(&mut self, inj: Option<FaultInjector>) {
        self.act_faults = inj;
    }

    /// Per-layer weight quantizer descriptions (for reports); `None`
    /// entries are unquantized layers.
    pub fn weight_quantizer_descriptions(&self) -> Vec<Option<String>> {
        self.layers
            .iter()
            .map(|l| l.weight_quantizer().map(|q| q.describe()))
            .collect()
    }
}

/// Applies the activation fault model to one tensor: flips stored-word
/// bits through the slot's quantizer codec (binary32 when unquantized).
fn corrupt_activations(
    inj: &mut Option<FaultInjector>,
    q: &Option<QuantizerHandle>,
    x: &mut Tensor,
) {
    if let Some(inj) = inj {
        let codec = q
            .as_ref()
            .and_then(|q| q.bit_codec())
            .unwrap_or(BitCodec::Float32);
        inj.corrupt_slice(&codec, BufferKind::Act, x.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::NetworkSpec;
    use qnn_quant::calibrate::Method;
    use qnn_tensor::Shape;

    fn tiny_spec() -> NetworkSpec {
        NetworkSpec::new("tiny", (1, 8, 8))
            .conv(4, 3, 1, 1)
            .relu()
            .max_pool(2, 2)
            .dense(5)
    }

    fn batch(n: usize) -> Tensor {
        let len = n * 64;
        Tensor::from_vec(
            Shape::d4(n, 1, 8, 8),
            (0..len).map(|i| ((i as f32) * 0.31).sin()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn build_and_forward_shapes() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let y = net.forward(&batch(3), Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[3, 5]);
    }

    #[test]
    fn deterministic_build() {
        let mut a = Network::build(&tiny_spec(), 9).unwrap();
        let mut b = Network::build(&tiny_spec(), 9).unwrap();
        let x = batch(2);
        assert_eq!(
            a.forward(&x, Mode::Eval).unwrap(),
            b.forward(&x, Mode::Eval).unwrap()
        );
        let mut c = Network::build(&tiny_spec(), 10).unwrap();
        assert_ne!(
            b.forward(&x, Mode::Eval).unwrap(),
            c.forward(&x, Mode::Eval).unwrap()
        );
    }

    #[test]
    fn input_shape_validated() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let bad = Tensor::zeros(Shape::d4(1, 3, 8, 8));
        assert!(matches!(
            net.forward(&bad, Mode::Eval),
            Err(NnError::InputMismatch { .. })
        ));
    }

    #[test]
    fn state_dict_round_trips() {
        let mut a = Network::build(&tiny_spec(), 1).unwrap();
        let mut b = Network::build(&tiny_spec(), 2).unwrap();
        let x = batch(2);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        b.load_state(&a.state_dict()).unwrap();
        assert_eq!(b.forward(&x, Mode::Eval).unwrap(), ya);
    }

    #[test]
    fn load_state_validates() {
        let a = Network::build(&tiny_spec(), 1).unwrap();
        let mut b = Network::build(&tiny_spec(), 2).unwrap();
        let mut state = a.state_dict();
        state.pop();
        assert!(b.load_state(&state).is_err());
    }

    #[test]
    fn set_precision_quantizes_forward() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        let y_fp = net.forward(&x, Mode::Eval).unwrap();
        net.set_precision(
            Precision::fixed(4, 4),
            Method::MaxAbs,
            &x,
            ActivationCalibration::PerLayer,
        )
        .unwrap();
        let y_q = net.forward(&x, Mode::Eval).unwrap();
        assert_ne!(y_fp, y_q, "4-bit quantization must perturb the output");
        // And clearing restores the FP path exactly.
        net.clear_precision();
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), y_fp);
    }

    #[test]
    fn per_layer_assignment_installs_mixed_quantizers() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        let y_fp = net.forward(&x, Mode::Eval).unwrap();
        let weighted = net.layers.iter().filter(|l| !l.params().is_empty()).count();
        let assignment: Vec<Precision> = (0..weighted)
            .map(|i| {
                if i == 0 {
                    Precision::fixed(4, 4)
                } else {
                    Precision::fixed(16, 16)
                }
            })
            .collect();
        net.set_precision_per_layer(&assignment, Method::MaxAbs, &x)
            .unwrap();
        assert_eq!(net.precision(), None, "mixed is not a uniform precision");
        assert_eq!(net.precision_per_layer(), Some(assignment.as_slice()));
        assert!(net.is_quantized());
        let y_mixed = net.forward(&x, Mode::Eval).unwrap();
        assert_ne!(y_fp, y_mixed, "a 4-bit layer must perturb the output");
        // A uniform assignment through the per-layer path matches the
        // uniform installer bit for bit: same calibration, same slots.
        let uniform = vec![Precision::fixed(8, 8); weighted];
        net.set_precision_per_layer(&uniform, Method::MaxAbs, &x)
            .unwrap();
        let y_via_per_layer = net.forward(&x, Mode::Eval).unwrap();
        net.set_precision(
            Precision::fixed(8, 8),
            Method::MaxAbs,
            &x,
            ActivationCalibration::PerLayer,
        )
        .unwrap();
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), y_via_per_layer);
        // Clearing restores the FP path exactly.
        net.clear_precision();
        assert!(!net.is_quantized());
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), y_fp);
    }

    #[test]
    fn per_layer_assignment_length_is_validated() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        assert!(matches!(
            net.set_precision_per_layer(&[Precision::fixed(8, 8)], Method::MaxAbs, &x),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn quantized_gradients_flow() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        net.set_precision(
            Precision::fixed(8, 8),
            Method::MaxAbs,
            &x,
            ActivationCalibration::PerLayer,
        )
        .unwrap();
        let y = net.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.shape().clone());
        net.backward(&g).unwrap();
        let total_grad: f32 = net
            .params()
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|v| v.abs()).sum::<f32>())
            .sum();
        assert!(total_grad > 0.0);
    }

    #[test]
    fn sixteen_bit_barely_changes_output() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        let y_fp = net.forward(&x, Mode::Eval).unwrap();
        net.set_precision(
            Precision::fixed(16, 16),
            Method::MaxAbs,
            &x,
            ActivationCalibration::PerLayer,
        )
        .unwrap();
        let y_q = net.forward(&x, Mode::Eval).unwrap();
        let max_err = y_fp
            .as_slice()
            .iter()
            .zip(y_q.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let scale = y_fp
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        assert!(max_err / scale < 0.01, "relative error {}", max_err / scale);
    }

    #[test]
    fn global_activation_calibration_shares_one_quantizer() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        net.set_precision(
            Precision::fixed(8, 8),
            Method::MaxAbs,
            &x,
            ActivationCalibration::Global,
        )
        .unwrap();
        let descs: std::collections::HashSet<String> = net
            .act_q
            .iter()
            .map(|q| q.as_ref().unwrap().describe())
            .collect();
        assert_eq!(descs.len(), 1);
    }

    #[test]
    fn ste_clip_freezes_out_of_range_weights() {
        let mut net = Network::build(&tiny_spec(), 1).unwrap();
        let x = batch(2);
        net.set_precision(
            Precision::fixed(8, 8),
            Method::MaxAbs,
            &x,
            ActivationCalibration::PerLayer,
        )
        .unwrap();
        // Push one weight far out of range, give it gradient, clip.
        {
            let mut params = net.params_mut();
            params[0].value.as_mut_slice()[0] = 100.0;
            params[0].grad = Tensor::ones(params[0].value.shape().clone());
        }
        net.apply_ste_clip().unwrap();
        let params = net.params();
        assert_eq!(params[0].grad.as_slice()[0], 0.0);
        assert_eq!(params[0].grad.as_slice()[1], 1.0);
    }
}
