//! Declarative network architecture specs.
//!
//! A [`NetworkSpec`] captures an architecture the way the paper's Table I/II
//! does — an input shape and a stack of layer rows — and is the single
//! source of truth for three consumers:
//!
//! * [`Network::build`](crate::Network::build) instantiates runnable layers;
//! * [`NetworkSpec::workload`](crate::workload) derives the per-layer
//!   MAC/traffic counts the accelerator's cycle model needs;
//! * [`crate::memory`] computes parameter footprints per precision.
//!
//! Pooling uses floor division for output sizes (Caffe uses ceil; the
//! resulting feature maps differ by at most one row/column, which shifts
//! MAC totals a few percent — documented in DESIGN.md).

use qnn_tensor::conv::Geometry;
use qnn_tensor::Shape;

use crate::error::NnError;

/// One row of a Table I/II architecture description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// `conv k×k×out` with explicit stride and padding.
    Conv {
        /// Output channel count.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
    },
    /// Rectified linear unit.
    Relu,
    /// `maxpool k×k` with the given stride.
    MaxPool {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Ceil-mode output sizing (Caffe's pooling default).
        ceil: bool,
    },
    /// `avgpool k×k` with the given stride.
    AvgPool {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Ceil-mode output sizing (Caffe's pooling default).
        ceil: bool,
    },
    /// `innerproduct units` (fully connected).
    Dense {
        /// Output unit count.
        units: usize,
    },
}

impl LayerSpec {
    /// Whether the layer carries trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(self, LayerSpec::Conv { .. } | LayerSpec::Dense { .. })
    }
}

/// Shape and cost summary of one layer within a concrete network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Index in the spec's layer list.
    pub index: usize,
    /// The layer spec.
    pub spec: LayerSpec,
    /// Input shape `(C, H, W)` or flattened `(D)`.
    pub input: Shape,
    /// Output shape.
    pub output: Shape,
    /// Trainable parameter count (weights + biases).
    pub params: usize,
    /// Multiply-accumulate operations per image.
    pub macs: u64,
}

/// A named architecture: input shape plus layer stack.
///
/// Built with a fluent API mirroring the paper's table rows:
///
/// ```
/// use qnn_nn::arch::NetworkSpec;
///
/// // LeNet's first two rows.
/// let spec = NetworkSpec::new("lenet-head", (1, 28, 28))
///     .conv(20, 5, 1, 0)
///     .relu()
///     .max_pool(2, 2);
/// assert_eq!(spec.summaries().unwrap().last().unwrap().output.dims(), &[20, 12, 12]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    name: String,
    input: (usize, usize, usize),
    layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Starts a spec with a name and input shape `(C, H, W)`.
    pub fn new(name: impl Into<String>, input: (usize, usize, usize)) -> Self {
        NetworkSpec {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Appends a convolution row.
    pub fn conv(mut self, out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        self.layers.push(LayerSpec::Conv {
            out_channels,
            kernel,
            stride,
            pad,
        });
        self
    }

    /// Appends a ReLU row.
    pub fn relu(mut self) -> Self {
        self.layers.push(LayerSpec::Relu);
        self
    }

    /// Appends a max-pool row (floor-mode output sizing).
    pub fn max_pool(mut self, kernel: usize, stride: usize) -> Self {
        self.layers.push(LayerSpec::MaxPool {
            kernel,
            stride,
            ceil: false,
        });
        self
    }

    /// Appends a max-pool row with Caffe's ceil-mode sizing (the paper's
    /// ALEX 3×3/stride-2 pools).
    pub fn max_pool_ceil(mut self, kernel: usize, stride: usize) -> Self {
        self.layers.push(LayerSpec::MaxPool {
            kernel,
            stride,
            ceil: true,
        });
        self
    }

    /// Appends an average-pool row (floor-mode output sizing).
    pub fn avg_pool(mut self, kernel: usize, stride: usize) -> Self {
        self.layers.push(LayerSpec::AvgPool {
            kernel,
            stride,
            ceil: false,
        });
        self
    }

    /// Appends an average-pool row with ceil-mode sizing.
    pub fn avg_pool_ceil(mut self, kernel: usize, stride: usize) -> Self {
        self.layers.push(LayerSpec::AvgPool {
            kernel,
            stride,
            ceil: true,
        });
        self
    }

    /// Appends a fully-connected row.
    pub fn dense(mut self, units: usize) -> Self {
        self.layers.push(LayerSpec::Dense { units });
        self
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape `(C, H, W)`.
    pub fn input(&self) -> (usize, usize, usize) {
        self.input
    }

    /// The layer rows.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Walks the spec, propagating shapes and computing per-layer parameter
    /// and MAC counts.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if the spec is empty or a layer's
    /// geometry is impossible for its input.
    pub fn summaries(&self) -> Result<Vec<LayerSummary>, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidSpec {
                network: self.name.clone(),
                reason: "no layers".to_string(),
            });
        }
        let (c, h, w) = self.input;
        let mut shape = Shape::d3(c, h, w);
        let mut out = Vec::with_capacity(self.layers.len());
        for (index, &spec) in self.layers.iter().enumerate() {
            let (output, params, macs) = self.step(&shape, spec, index)?;
            out.push(LayerSummary {
                index,
                spec,
                input: shape.clone(),
                output: output.clone(),
                params,
                macs,
            });
            shape = output;
        }
        Ok(out)
    }

    fn step(
        &self,
        input: &Shape,
        spec: LayerSpec,
        index: usize,
    ) -> Result<(Shape, usize, u64), NnError> {
        let bad = |reason: String| NnError::InvalidSpec {
            network: self.name.clone(),
            reason: format!("layer {index}: {reason}"),
        };
        match spec {
            LayerSpec::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                if input.rank() != 3 {
                    return Err(bad(format!("conv needs spatial input, got {input}")));
                }
                let (c, h, w) = (input.dim(0), input.dim(1), input.dim(2));
                let geom = Geometry::square(kernel, stride, pad);
                let (oh, ow) = geom.output_hw(h, w).map_err(|e| bad(e.to_string()))?;
                let params = out_channels * c * kernel * kernel + out_channels;
                let macs = (oh * ow * out_channels * c * kernel * kernel) as u64;
                Ok((Shape::d3(out_channels, oh, ow), params, macs))
            }
            LayerSpec::Relu => Ok((input.clone(), 0, 0)),
            LayerSpec::MaxPool {
                kernel,
                stride,
                ceil,
            }
            | LayerSpec::AvgPool {
                kernel,
                stride,
                ceil,
            } => {
                if input.rank() != 3 {
                    return Err(bad(format!("pool needs spatial input, got {input}")));
                }
                let geom = if ceil {
                    Geometry::square_ceil(kernel, stride, 0)
                } else {
                    Geometry::square(kernel, stride, 0)
                };
                let (oh, ow) = geom
                    .output_hw(input.dim(1), input.dim(2))
                    .map_err(|e| bad(e.to_string()))?;
                Ok((Shape::d3(input.dim(0), oh, ow), 0, 0))
            }
            LayerSpec::Dense { units } => {
                let d = input.len();
                if d == 0 {
                    return Err(bad("dense over empty input".to_string()));
                }
                let params = units * d + units;
                let macs = (units * d) as u64;
                Ok((Shape::d1(units), params, macs))
            }
        }
    }

    /// Total trainable parameter count.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid; validate with [`summaries`] first
    /// when handling untrusted specs.
    ///
    /// [`summaries`]: NetworkSpec::summaries
    pub fn param_count(&self) -> usize {
        self.summaries()
            .expect("invalid network spec")
            .iter()
            .map(|l| l.params)
            .sum()
    }

    /// Total multiply-accumulates per image.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn macs_per_image(&self) -> u64 {
        self.summaries()
            .expect("invalid network spec")
            .iter()
            .map(|l| l.macs)
            .sum()
    }

    /// Number of output classes (units of the final dense layer).
    ///
    /// Returns `None` if the spec does not end in a dense layer.
    pub fn num_classes(&self) -> Option<usize> {
        match self.layers.last() {
            Some(LayerSpec::Dense { units }) => Some(*units),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lenet_like() -> NetworkSpec {
        NetworkSpec::new("lenet", (1, 28, 28))
            .conv(20, 5, 1, 0)
            .relu()
            .max_pool(2, 2)
            .conv(50, 5, 1, 0)
            .relu()
            .max_pool(2, 2)
            .dense(500)
            .relu()
            .dense(10)
    }

    #[test]
    fn shape_propagation() {
        let s = lenet_like().summaries().unwrap();
        assert_eq!(s[0].output.dims(), &[20, 24, 24]);
        assert_eq!(s[2].output.dims(), &[20, 12, 12]);
        assert_eq!(s[3].output.dims(), &[50, 8, 8]);
        assert_eq!(s[5].output.dims(), &[50, 4, 4]);
        assert_eq!(s[6].output.dims(), &[500]);
        assert_eq!(s[8].output.dims(), &[10]);
    }

    #[test]
    fn lenet_parameter_count() {
        // 20·25+20 + 50·20·25+50 + 500·800+500 + 10·500+10 = 431,080
        assert_eq!(lenet_like().param_count(), 431_080);
    }

    #[test]
    fn lenet_mac_count() {
        // conv1 24²·20·25 + conv2 8²·50·500 + fc 800·500 + fc 500·10
        let want = 24 * 24 * 20 * 25 + 8 * 8 * 50 * 500 + 800 * 500 + 500 * 10;
        assert_eq!(lenet_like().macs_per_image(), want as u64);
    }

    #[test]
    fn relu_and_pool_are_free() {
        let s = lenet_like().summaries().unwrap();
        assert_eq!(s[1].params + s[1].macs as usize, 0);
        assert_eq!(s[2].params + s[2].macs as usize, 0);
    }

    #[test]
    fn empty_spec_rejected() {
        let s = NetworkSpec::new("empty", (1, 8, 8));
        assert!(s.summaries().is_err());
    }

    #[test]
    fn impossible_geometry_rejected() {
        let s = NetworkSpec::new("bad", (1, 4, 4)).conv(8, 7, 1, 0);
        assert!(matches!(s.summaries(), Err(NnError::InvalidSpec { .. })));
    }

    #[test]
    fn num_classes_from_last_dense() {
        assert_eq!(lenet_like().num_classes(), Some(10));
        let no_dense = NetworkSpec::new("conv-only", (1, 8, 8)).conv(4, 3, 1, 1);
        assert_eq!(no_dense.num_classes(), None);
    }

    #[test]
    fn dense_after_conv_flattens() {
        let s = NetworkSpec::new("x", (3, 8, 8))
            .conv(4, 3, 1, 1)
            .dense(10)
            .summaries()
            .unwrap();
        assert_eq!(s[1].params, 10 * 4 * 64 + 10);
    }
}
