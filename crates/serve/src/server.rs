//! The server: an accept loop, one reader + one writer thread per
//! connection, and an inference engine draining the batching queue with
//! a bounded fan-out of parallel forwards.
//!
//! ## Thread structure
//!
//! * **accept** — blocks in `TcpListener::accept`, spawns a handler per
//!   connection, exits when the stop flag rises (woken by a loopback
//!   self-connect).
//! * **handler** (per connection) — decodes frames with a 50 ms poll so
//!   it can observe the stop flag, validates them, and enqueues
//!   [`Request`]s. Inference payloads decode straight into recycled
//!   [`Arena`] slabs — steady-state request intake allocates nothing.
//!   Malformed input answers with a typed error frame where the stream
//!   is still answerable, and never panics the server.
//! * **writer** (per connection) — owns the write half; everything sent
//!   to a connection (engine responses and handler rejections alike)
//!   funnels through one mpsc channel, so frames never interleave
//!   mid-write.
//! * **engine** — drains batches, groups them by precision tag, splits
//!   each group into at most `engine_threads` contiguous sub-batches,
//!   and fans the stacked Eval forwards out over
//!   [`qnn_tensor::par::map_capped`] against a pool of identical
//!   [`ModelBank`] replicas. Each sub-batch's logits depend only on
//!   `(seed, tag, images)` — never on which replica or thread ran it —
//!   so responses stay bit-identical to single-shot at any
//!   `engine_threads` (and any `QNN_THREADS`: engine workers are pool
//!   workers, so kernels inside them run serial rather than nesting).
//!   With `engine_threads = 1` the fan-out collapses to the plain
//!   sequential loop and kernels keep their own data-parallelism.
//!
//! ## Graceful shutdown
//!
//! A `Shutdown` frame (or [`Server::shutdown`]) closes the queue: new
//! work is refused with `ShuttingDown`, the engine drains every request
//! already accepted, acknowledges each shutdown requester with
//! `ShutdownAck` *after* the drain, raises the stop flag and wakes the
//! accept loop. [`Server::join`] then reaps every thread and returns the
//! run's [`ServeStats`].

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qnn_tensor::par;
use qnn_tensor::Tensor;
use qnn_trace::Histogram;

use crate::arena::{Arena, Slab};
use crate::lifecycle::{canary_gate, BankCheckpoint, ReloadError};
use crate::model::{ModelBank, MODEL_SEED, NUM_PRECISIONS};
use crate::proto::{self, ErrorCode, Frame, FrameKind, ProtoError, HEADER_LEN};
use crate::queue::{self, BatchQueue, PushError, Request};
use crate::ServeError;

/// Tuning knobs for a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (report it via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Flush a batch as soon as this many requests are waiting.
    pub max_batch: usize,
    /// ... or when the oldest request has waited this long.
    pub max_wait: Duration,
    /// Queue capacity; pushes beyond it are rejected with `Busy`.
    pub queue_cap: usize,
    /// Model-bank seed (both ends of a soak run must agree).
    pub seed: u64,
    /// Maximum parallel engine forwards per batch (`--engine-threads`).
    /// Responses are bit-identical at any setting; 1 restores the
    /// sequential engine.
    pub engine_threads: usize,
    /// Durable model-bank checkpoint path. When set, startup loads the
    /// bank from this file (falling back to its `.bak` rotation if the
    /// primary is corrupt — surfaced as the `serve.checkpoint.fallback`
    /// counter), writing an initial seed-derived checkpoint if neither
    /// exists; every promoted hot-reload is persisted here *before* the
    /// in-memory swap, so a SIGKILL mid-swap always restarts into a
    /// complete old or new bank. `None` serves the seed bank with no
    /// durability.
    pub checkpoint: Option<PathBuf>,
    /// Canary floor: minimum fraction of seeded probe forwards whose
    /// top-1 class must agree with the live bank before a reload is
    /// promoted. `0.0` (the default) keeps the integrity checks —
    /// finite logits, batched ≡ single-shot, reproducibility — but
    /// accepts any accuracy drift; `1.0` demands full probe agreement.
    pub canary_min_agree: f32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_wait: Duration::from_micros(2000),
            queue_cap: 256,
            seed: MODEL_SEED,
            engine_threads: 1,
            checkpoint: None,
            canary_min_agree: 0.0,
        }
    }
}

/// What a finished server run did, returned by [`Server::join`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Inference requests answered with logits.
    pub requests: u64,
    /// Batches flushed through the engine.
    pub batches: u64,
    /// Requests rejected with `Busy` (backpressure).
    pub rejected_busy: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Hot-reloads canary-approved and promoted.
    pub reloads_promoted: u64,
    /// Hot-reloads refused (`ReloadRejected`) — the previous version
    /// kept serving through every one of these.
    pub reloads_rejected: u64,
    /// 1 when startup recovered the bank from the checkpoint's `.bak`
    /// rotation because the primary was corrupt or missing.
    pub checkpoint_fallback: u64,
    /// Per-request queue→response latency, microseconds.
    pub latency_us: Histogram,
    /// Requests per flushed batch.
    pub batch_size: Histogram,
}

impl ServeStats {
    /// A human-readable run summary (printed by `qnn serve` at exit).
    pub fn render(&self) -> String {
        format!(
            "served {} request(s) in {} batch(es) over {} connection(s); \
             {} busy rejection(s); {} reload(s) promoted, {} rejected\n\
             batch size  mean {:.2}  p50 {:.0}  p99 {:.0}  max {:.0}\n\
             latency us  mean {:.0}  p50 {:.0}  p99 {:.0}  max {:.0}\n",
            self.requests,
            self.batches,
            self.connections,
            self.rejected_busy,
            self.reloads_promoted,
            self.reloads_rejected,
            self.batch_size.mean(),
            self.batch_size.quantile(0.5),
            self.batch_size.quantile(0.99),
            if self.batch_size.count == 0 {
                0.0
            } else {
                self.batch_size.max
            },
            self.latency_us.mean(),
            self.latency_us.quantile(0.5),
            self.latency_us.quantile(0.99),
            if self.latency_us.count == 0 {
                0.0
            } else {
                self.latency_us.max
            },
        )
    }
}

/// A version-tagged set of identical [`ModelBank`] replicas — what one
/// epoch of the model lifecycle serves.
///
/// The live set lives behind `Ctl::live`; every accepted request pins
/// its own `Arc` clone, so a hot-reload swap is a pointer replacement:
/// queued and in-flight requests keep computing on the set that
/// admitted them, new requests pick up the new set, and the old set's
/// replicas drop (emitting `serve.bank.reclaimed`) exactly when the
/// last pinned request finishes.
pub struct BankSet {
    /// Monotonically increasing model version; 1 at startup. Responses
    /// stamp `version % 256` into the `InferOk` tag byte.
    pub version: u32,
    /// The seed this bank was built and calibrated from.
    pub seed: u64,
    /// Identical replicas, one per engine thread.
    pub(crate) banks: Vec<Mutex<ModelBank>>,
}

impl std::fmt::Debug for BankSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankSet")
            .field("version", &self.version)
            .field("seed", &self.seed)
            .field("replicas", &self.banks.len())
            .finish()
    }
}

impl BankSet {
    fn build(
        version: u32,
        seed: u64,
        state: Option<&[Tensor]>,
        replicas: usize,
    ) -> Result<BankSet, ReloadError> {
        let mut banks = Vec::with_capacity(replicas.max(1));
        for _ in 0..replicas.max(1) {
            banks.push(Mutex::new(ModelBank::build_from(seed, state).map_err(
                |e| ReloadError::Build {
                    detail: e.to_string(),
                },
            )?));
        }
        Ok(BankSet {
            version,
            seed,
            banks,
        })
    }

    #[cfg(test)]
    pub(crate) fn test_stub() -> Arc<BankSet> {
        Arc::new(BankSet {
            version: 1,
            seed: 0,
            banks: Vec::new(),
        })
    }
}

impl Drop for BankSet {
    fn drop(&mut self) {
        // The last pinned request just drained: this version's replicas
        // are reclaimed here, never mid-flight.
        qnn_trace::counter!("serve.bank.reclaimed", 1);
    }
}

/// Shared control state.
struct Ctl {
    queue: BatchQueue,
    /// The live model epoch. Handlers pin a clone per accepted request;
    /// [`try_reload`] replaces it under the lock after the canary gate
    /// and the durable persist.
    live: Mutex<Arc<BankSet>>,
    /// Single-flight reload guard: a second `Reload` while one is in
    /// progress is refused with [`ReloadError::InFlight`].
    reload: Mutex<()>,
    /// Replica count for newly promoted bank sets (= engine threads).
    replicas: usize,
    /// Canary agreement floor (see `ServeConfig::canary_min_agree`).
    canary_min_agree: f32,
    /// Durable checkpoint path promoted reloads persist to.
    checkpoint: Option<PathBuf>,
    /// Reloads promoted (engine folds into stats at exit).
    reloads_promoted: AtomicU64,
    /// Reloads refused.
    reloads_rejected: AtomicU64,
    /// 1 when startup used the `.bak` rotation.
    checkpoint_fallback: AtomicU64,
    /// Everything exits when this rises (set by the engine after drain).
    stop: AtomicBool,
    /// Raised only by [`Server::kill`]: handlers abandon their peers
    /// between frames even when traffic keeps the socket hot. Graceful
    /// shutdown leaves this low so handlers keep answering typed
    /// refusals (and heartbeats) until their peer hangs up.
    killed: AtomicBool,
    /// Connections that asked for shutdown, acked after the drain.
    shutdown_waiters: Mutex<Vec<(u64, mpsc::Sender<Frame>)>>,
    /// Busy rejections (handlers increment, engine folds into stats).
    rejected_busy: AtomicU64,
    /// Accepted connections.
    connections: AtomicU64,
    /// Expected image length in floats, for request validation.
    input_len: usize,
    /// Retry hint handed out with `Busy` rejections, microseconds. The
    /// engine re-derives it after every batch from the queue depth and
    /// its recent drain rate ([`queue::retry_hint_us`]); handlers read
    /// the latest value when rejecting.
    retry_hint_us: AtomicU32,
    /// Floor for the adaptive hint (the engine's batch window).
    hint_floor_us: u32,
    /// Recycled-slab pool every connection decodes images into.
    arena: Arena,
}

impl Ctl {
    fn begin_shutdown(&self) {
        self.queue.close();
    }
}

/// A running server; dropping it does *not* stop it — call
/// [`shutdown`](Server::shutdown) + [`join`](Server::join) (or have a
/// client send a `Shutdown` frame).
pub struct Server {
    addr: SocketAddr,
    ctl: Arc<Ctl>,
    engine: Option<JoinHandle<ServeStats>>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, builds the model bank, and spawns the thread structure.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on bind failure, and model-bank construction
    /// errors flattened into [`ServeError::Io`].
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        // Resolve the startup bank: a durable checkpoint when configured
        // (with `.bak` rescue for a corrupt primary), else the seed.
        let mut checkpoint_fallback = 0u64;
        let (seed, state) = match &cfg.checkpoint {
            Some(path) => {
                let bak = qnn_nn::checkpoint::bak_path(path);
                if path.exists() || bak.exists() {
                    let (cp, used_fallback) = BankCheckpoint::load_latest(path)
                        .map_err(|e| ServeError::Io(format!("checkpoint {path:?}: {e}")))?;
                    if used_fallback {
                        checkpoint_fallback = 1;
                        qnn_trace::counter!("serve.checkpoint.fallback", 1);
                        eprintln!(
                            "warning: checkpoint {path:?} corrupt or missing; \
                             recovered from {bak:?}"
                        );
                    }
                    (cp.seed, Some(cp.state))
                } else {
                    // First boot: make the seed bank durable so later
                    // reloads have something to rotate.
                    let cp = BankCheckpoint::capture(cfg.seed)
                        .map_err(|e| ServeError::Io(format!("model bank: {e}")))?;
                    cp.save(path)
                        .map_err(|e| ServeError::Io(format!("checkpoint {path:?}: {e}")))?;
                    (cp.seed, Some(cp.state))
                }
            }
            None => (cfg.seed, None),
        };
        // One identical bank replica per engine thread — all built from
        // the same seed + weights, so any replica answers any request
        // with the same bits.
        let replicas = cfg.engine_threads.max(1);
        let bank_set = BankSet::build(1, seed, state.as_deref(), replicas)
            .map_err(|e| ServeError::Io(format!("model bank: {e}")))?;
        let input_len = bank_set.banks[0].lock().unwrap().input_len();
        qnn_trace::gauge!("serve.model.version", 1.0);
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError::io(&e))?;
        let addr = listener.local_addr().map_err(|e| ServeError::io(&e))?;
        let hint_floor_us = (cfg.max_wait.as_micros() as u32).max(100);
        let ctl = Arc::new(Ctl {
            queue: BatchQueue::new(cfg.queue_cap),
            live: Mutex::new(Arc::new(bank_set)),
            reload: Mutex::new(()),
            replicas,
            canary_min_agree: cfg.canary_min_agree,
            checkpoint: cfg.checkpoint.clone(),
            reloads_promoted: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            checkpoint_fallback: AtomicU64::new(checkpoint_fallback),
            stop: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            shutdown_waiters: Mutex::new(Vec::new()),
            rejected_busy: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            input_len,
            retry_hint_us: AtomicU32::new(hint_floor_us),
            hint_floor_us,
            arena: Arena::new(),
        });

        let engine = {
            let ctl = Arc::clone(&ctl);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("qnn-serve-engine".to_string())
                .spawn(move || engine_loop(&ctl, &cfg, addr))
                .map_err(|e| ServeError::io(&e))?
        };

        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let ctl = Arc::clone(&ctl);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("qnn-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &ctl, &handlers))
                .map_err(|e| ServeError::io(&e))?
        };

        Ok(Server {
            addr,
            ctl,
            engine: Some(engine),
            accept: Some(accept),
            handlers,
        })
    }

    /// The actually-bound address (resolves a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live model version (1 at startup, +1 per promoted reload).
    pub fn model_version(&self) -> u32 {
        self.ctl.live.lock().unwrap().version
    }

    /// The live bank's seed — after a reload, the seed of whatever
    /// checkpoint was promoted last.
    pub fn model_seed(&self) -> u64 {
        self.ctl.live.lock().unwrap().seed
    }

    /// Bytes the request arena has genuinely allocated so far. Flat
    /// once the slab pool reaches its working set — the observable the
    /// arena-reuse e2e test asserts on.
    pub fn arena_allocated_bytes(&self) -> u64 {
        self.ctl.arena.allocated_bytes()
    }

    /// Requests a graceful shutdown: stop accepting work, drain what is
    /// queued. Pair with [`join`](Server::join).
    pub fn shutdown(&self) {
        self.ctl.begin_shutdown();
    }

    /// Simulates an abrupt crash for chaos tests: the queued backlog is
    /// discarded *without responses*, the stop flag rises, and every
    /// socket closes as its threads exit — peers see EOF mid-request,
    /// exactly what a `kill -9` leaves behind. A batch already inside
    /// the engine may still answer (or not escape before the connection
    /// drops); that ambiguity is the point. Pair with
    /// [`join`](Server::join) to reap threads.
    pub fn kill(&self) {
        self.ctl.queue.close_discarding();
        self.ctl.killed.store(true, Ordering::SeqCst);
        self.ctl.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
    }

    /// Blocks until the server has fully shut down (triggered by a
    /// client `Shutdown` frame or [`shutdown`](Server::shutdown)) and
    /// every thread is reaped; returns the run's stats.
    pub fn join(mut self) -> ServeStats {
        let stats = self
            .engine
            .take()
            .expect("join called once")
            .join()
            .unwrap_or_else(|_| ServeStats {
                requests: 0,
                batches: 0,
                rejected_busy: 0,
                connections: 0,
                reloads_promoted: 0,
                reloads_rejected: 0,
                checkpoint_fallback: 0,
                latency_us: Histogram::new(),
                batch_size: Histogram::new(),
            });
        // The engine wakes the accept loop itself, but a second nudge is
        // harmless and covers an engine that panicked before its wake.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        stats
    }
}

fn accept_loop(listener: &TcpListener, ctl: &Arc<Ctl>, handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if ctl.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if ctl.stop.load(Ordering::SeqCst) {
            return; // the wake-up self-connect, or a straggler
        }
        ctl.connections.fetch_add(1, Ordering::Relaxed);
        qnn_trace::counter!("serve.connections", 1);
        let ctl = Arc::clone(ctl);
        if let Ok(h) = std::thread::Builder::new()
            .name("qnn-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &ctl))
        {
            handlers.lock().unwrap().push(h);
        }
    }
}

/// Outcome of one interruptible frame read.
pub(crate) enum ReadEvent {
    /// A non-inference frame (shutdown, protocol misuse), materialised
    /// the ordinary owned way — rare, so the copy is irrelevant.
    Frame(Frame),
    /// An inference request, its payload already decoded into an arena
    /// slab — the zero-copy hot path: the image bytes went straight from
    /// the socket buffer into the floats the engine will read, with no
    /// intermediate `Frame`/`Vec` materialisation.
    Infer { req_id: u64, tag: u8, image: Slab },
    /// Peer closed cleanly on a frame boundary.
    Eof,
    /// The stop flag rose while waiting.
    Stopped,
    /// Malformed input; `req_id` is best-effort (0 when unrecoverable).
    Bad { err: ProtoError, req_id: u64 },
}

/// Reads exactly `buf.len()` bytes through the connection's poll
/// timeout, bailing out when the stop flag rises. Shared with the
/// router's edge-side reader in [`crate::cluster`].
pub(crate) fn fill(
    stream: &mut impl std::io::Read,
    buf: &mut [u8],
    got_before: usize,
    stop: &AtomicBool,
) -> Result<(), ReadEvent> {
    let mut off = 0;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                return Err(if got_before + off == 0 {
                    ReadEvent::Eof
                } else {
                    ReadEvent::Bad {
                        err: ProtoError::Truncated {
                            got: got_before + off,
                        },
                        req_id: 0,
                    }
                });
            }
            Ok(n) => off += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadEvent::Stopped);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ReadEvent::Bad {
                    err: ProtoError::Io { msg: e.to_string() },
                    req_id: 0,
                });
            }
        }
    }
    Ok(())
}

/// Reads one frame, decoding inference payloads into the connection's
/// reusable `payload_buf` and then an arena slab — the per-request
/// allocations the naive path would make (payload `Vec<u8>`, image
/// `Vec<f32>`) are both recycled buffers here.
fn read_frame_interruptible(
    stream: &mut impl std::io::Read,
    ctl: &Ctl,
    payload_buf: &mut Vec<u8>,
) -> ReadEvent {
    let mut header_bytes = [0u8; HEADER_LEN];
    if let Err(ev) = fill(stream, &mut header_bytes, 0, &ctl.stop) {
        return ev;
    }
    // Best-effort request id for error replies: only meaningful once the
    // magic checks out.
    let magic_ok = header_bytes[..4] == proto::MAGIC.to_le_bytes();
    let req_id = if magic_ok {
        u64::from_le_bytes(header_bytes[8..16].try_into().unwrap())
    } else {
        0
    };
    let header = match proto::parse_header(&header_bytes) {
        Ok(h) => h,
        Err(err) => return ReadEvent::Bad { err, req_id },
    };
    // Past the header, the request id is known: stamp it onto any
    // mid-frame failure so the error frame can echo it.
    let stamp = |ev: ReadEvent| match ev {
        ReadEvent::Eof => ReadEvent::Bad {
            err: ProtoError::Truncated { got: HEADER_LEN },
            req_id,
        },
        ReadEvent::Bad { err, .. } => ReadEvent::Bad { err, req_id },
        other => other,
    };
    payload_buf.clear();
    payload_buf.resize(header.payload_len as usize, 0);
    if let Err(ev) = fill(stream, payload_buf, HEADER_LEN, &ctl.stop) {
        return stamp(ev);
    }
    let mut crc = [0u8; 4];
    if let Err(ev) = fill(stream, &mut crc, HEADER_LEN + payload_buf.len(), &ctl.stop) {
        return stamp(ev);
    }
    if let Err(err) = proto::verify_crc(&header_bytes, payload_buf, u32::from_le_bytes(crc)) {
        return ReadEvent::Bad { err, req_id };
    }
    if header.kind == FrameKind::Infer {
        let mut image = ctl.arena.take(payload_buf.len() / 4);
        return match proto::decode_f32s_into(payload_buf, image.as_mut_vec()) {
            Ok(()) => ReadEvent::Infer {
                req_id,
                tag: header.tag,
                image,
            },
            Err(err) => ReadEvent::Bad { err, req_id },
        };
    }
    ReadEvent::Frame(Frame {
        kind: header.kind,
        tag: header.tag,
        req_id: header.req_id,
        payload: std::mem::take(payload_buf),
    })
}

/// Whether a decode error poisons the stream (respond, then close) or
/// leaves it answerable and framed (respond, keep reading).
fn is_fatal(err: &ProtoError) -> bool {
    !matches!(err, ProtoError::BadPayload { .. })
}

fn handle_connection(stream: TcpStream, ctl: &Arc<Ctl>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    // Response frames are small; Nagle would hold each one hostage to
    // the peer's delayed ACK (tens of ms per stall) — the single biggest
    // serving-throughput lever on a loopback benchmark.
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name("qnn-serve-write".to_string())
        .spawn(move || writer_loop(write_half, &rx));
    // Buffered so a frame costs one `read` syscall, not three. The
    // 50 ms poll timeout still applies: an empty buffer surfaces the
    // underlying `WouldBlock` untouched.
    let mut stream = std::io::BufReader::new(stream);
    // Reused across frames: the raw-payload staging buffer. After the
    // first request, steady-state intake on this connection performs no
    // heap allocation (pinned by the arena-reuse e2e test).
    let mut payload_buf: Vec<u8> = Vec::new();

    loop {
        // The in-read poll only observes the stop flag when the socket
        // goes idle; a steadily chatty peer (e.g. a 20 ms heartbeat)
        // never times out, so check between frames too — otherwise a
        // killed server keeps answering pings forever. Only a kill
        // breaks here: graceful shutdown keeps answering typed
        // refusals until the peer hangs up.
        if ctl.killed.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_interruptible(&mut stream, ctl, &mut payload_buf) {
            ReadEvent::Eof | ReadEvent::Stopped => break,
            ReadEvent::Bad { err, req_id } => {
                qnn_trace::counter!("serve.rx.bad_frames", 1);
                if let Some(code) = err.as_error_code() {
                    let _ = tx.send(Frame::error(req_id, code, 0, &err.to_string()));
                }
                if is_fatal(&err) {
                    break;
                }
            }
            ReadEvent::Infer { req_id, tag, image } => handle_infer(req_id, tag, image, &tx, ctl),
            ReadEvent::Frame(frame) => match frame.kind {
                FrameKind::Shutdown => {
                    ctl.shutdown_waiters
                        .lock()
                        .unwrap()
                        .push((frame.req_id, tx.clone()));
                    ctl.begin_shutdown();
                }
                // Heartbeats are answered here, not through the engine:
                // a Ping measures "is the process alive and reading its
                // sockets", so it must not queue behind inference work —
                // and must keep answering during a graceful drain.
                FrameKind::Ping => {
                    let _ = tx.send(Frame::pong(frame.req_id));
                }
                // Reloads run right here on the connection thread —
                // loading, building and canarying the candidate never
                // touches the engine thread, so inference keeps flowing
                // on the old version until the instant of the swap.
                FrameKind::Reload => {
                    let resp = match frame.reload_path() {
                        Ok(path) => do_reload(ctl, frame.req_id, Path::new(&path)),
                        Err(e) => {
                            Frame::error(frame.req_id, ErrorCode::BadPayload, 0, &e.to_string())
                        }
                    };
                    let _ = tx.send(resp);
                }
                // Server-bound streams carry requests only; a response
                // kind here is protocol misuse, answered but survivable.
                // (Infer never reaches this arm — the reader decodes it
                // straight to `ReadEvent::Infer` — but stays total.)
                FrameKind::Infer
                | FrameKind::InferOk
                | FrameKind::Error
                | FrameKind::ShutdownAck
                | FrameKind::Pong
                | FrameKind::ReloadOk => {
                    let _ = tx.send(Frame::error(
                        frame.req_id,
                        ErrorCode::BadKind,
                        0,
                        &format!("{:?} is not a request frame", frame.kind),
                    ));
                }
            },
        }
    }
    // Dropping tx lets the writer flush engine responses still in flight
    // for this connection (their Request clones keep the channel alive)
    // and exit once the last one is delivered.
    drop(tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

/// Handles one `Reload` frame end to end, translating the typed outcome
/// into its wire frame and recording the `serve.reload.*` telemetry.
fn do_reload(ctl: &Ctl, req_id: u64, path: &Path) -> Frame {
    qnn_trace::counter!("serve.reload.attempted", 1);
    let started = Instant::now();
    match try_reload(ctl, path) {
        Ok((version, seed)) => {
            ctl.reloads_promoted.fetch_add(1, Ordering::Relaxed);
            qnn_trace::counter!("serve.reload.promoted", 1);
            qnn_trace::observe!(
                "serve.reload.promote_us",
                started.elapsed().as_micros() as f64
            );
            Frame::reload_ok(req_id, version, seed)
        }
        Err(e) => {
            ctl.reloads_rejected.fetch_add(1, Ordering::Relaxed);
            qnn_trace::counter!("serve.reload.rejected", 1);
            Frame::error(req_id, ErrorCode::ReloadRejected, 0, &e.reason())
        }
    }
}

/// The lifecycle state machine: Load → Canary → Persist → Swap. Every
/// `Err` leaves the live set untouched — rollback is "do nothing", which
/// is why it cannot fail.
fn try_reload(ctl: &Ctl, path: &Path) -> Result<(u32, u64), ReloadError> {
    // Single-flight: concurrent reloads would race the persist/swap
    // ordering, so the second one is refused typed rather than queued.
    let _guard = ctl.reload.try_lock().map_err(|_| ReloadError::InFlight)?;

    // Load: CRC mismatch, truncation, wrong kind, malformed payload.
    let cp = BankCheckpoint::load(path).map_err(|e| ReloadError::Load {
        detail: e.to_string(),
    })?;
    // Build: tensor count/shape mismatch against the serving spec.
    let mut candidate = cp.to_bank().map_err(|e| ReloadError::Build {
        detail: e.to_string(),
    })?;

    // Canary: probe the candidate against the live bank. Borrows one
    // live replica; with multiple replicas the engine keeps serving on
    // the others, and even single-replica servers only pause for the
    // probe forwards, not the bank build.
    let live_set = Arc::clone(&*ctl.live.lock().unwrap());
    {
        let mut live_bank = live_set.banks[0].lock().unwrap();
        canary_gate(&mut candidate, &mut live_bank, ctl.canary_min_agree)?;
    }

    // The canary-validated bank becomes replica 0; clone-by-rebuild for
    // the rest (identical bits by construction).
    let version = live_set.version.wrapping_add(1);
    let mut banks = Vec::with_capacity(ctl.replicas.max(1));
    banks.push(Mutex::new(candidate));
    while banks.len() < ctl.replicas.max(1) {
        banks.push(Mutex::new(cp.to_bank().map_err(|e| {
            ReloadError::Build {
                detail: e.to_string(),
            }
        })?));
    }
    let next = BankSet {
        version,
        seed: cp.seed,
        banks,
    };

    // Persist *before* swap: once clients can observe the new version,
    // a crash must restart into it (or, killed earlier, into the old
    // one) — the checkpoint file is always a complete bank, old or new,
    // with the previous one rotated to `.bak`.
    if let Some(primary) = &ctl.checkpoint {
        // Reloading from the durable path itself means the new bank is
        // already on disk; re-saving would rotate the *new* weights
        // into `.bak` and lose the old ones.
        if primary.as_path() != path {
            cp.save(primary).map_err(|e| ReloadError::Persist {
                detail: e.to_string(),
            })?;
        }
    }

    // Swap: a pointer replacement under the lock. In-flight and queued
    // requests hold their own pins; nothing blocks on this.
    *ctl.live.lock().unwrap() = Arc::new(next);
    qnn_trace::gauge!("serve.model.version", f64::from(version));
    Ok((version, cp.seed))
}

fn handle_infer(req_id: u64, tag: u8, image: Slab, tx: &mpsc::Sender<Frame>, ctl: &Ctl) {
    if tag >= NUM_PRECISIONS {
        let _ = tx.send(Frame::error(
            req_id,
            ErrorCode::BadPrecision,
            0,
            &format!("precision tag {tag} outside Table III (0..{NUM_PRECISIONS})"),
        ));
        return;
    }
    if image.len() != ctl.input_len {
        let _ = tx.send(Frame::error(
            req_id,
            ErrorCode::BadPayload,
            0,
            &format!(
                "image has {} floats, model wants {}",
                image.len(),
                ctl.input_len
            ),
        ));
        return;
    }
    let req = Request {
        id: req_id,
        tag,
        image,
        reply: tx.clone(),
        enqueued: Instant::now(),
        // Pin the live epoch at admission: however long this request
        // queues, it computes on the model version that accepted it.
        bank: Arc::clone(&*ctl.live.lock().unwrap()),
    };
    match ctl.queue.try_push(req) {
        Ok(()) => {}
        Err(PushError::Full) => {
            ctl.rejected_busy.fetch_add(1, Ordering::Relaxed);
            qnn_trace::counter!("serve.rejected.busy", 1);
            let _ = tx.send(Frame::error(
                req_id,
                ErrorCode::Busy,
                ctl.retry_hint_us.load(Ordering::Relaxed),
                "batching queue full",
            ));
        }
        Err(PushError::Closed) => {
            let _ = tx.send(Frame::error(
                req_id,
                ErrorCode::ShuttingDown,
                0,
                "server is draining",
            ));
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: &mpsc::Receiver<Frame>) {
    // Coalesce whatever responses are already queued into one write, so
    // a drained batch costs one syscall/packet instead of one per frame.
    let mut out: Vec<u8> = Vec::new();
    while let Ok(frame) = rx.recv() {
        out.clear();
        out.extend_from_slice(&frame.encode());
        let mut frames = 1u64;
        while let Ok(next) = rx.try_recv() {
            out.extend_from_slice(&next.encode());
            frames += 1;
        }
        if stream
            .write_all(&out)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return; // peer gone; remaining responses have nowhere to go
        }
        qnn_trace::counter!("serve.tx.frames", frames);
    }
}

/// Checks a bank replica out of the pool: first replica whose lock is
/// free, else block on the unit's home replica. Any replica computes the
/// same bits, so the choice only affects timing.
fn checkout(banks: &[Mutex<ModelBank>], unit: usize) -> MutexGuard<'_, ModelBank> {
    for bank in banks {
        if let Ok(guard) = bank.try_lock() {
            return guard;
        }
    }
    banks[unit % banks.len()].lock().unwrap()
}

fn engine_loop(ctl: &Arc<Ctl>, cfg: &ServeConfig, addr: SocketAddr) -> ServeStats {
    let engine_threads = ctl.replicas;
    let mut stats = ServeStats {
        requests: 0,
        batches: 0,
        rejected_busy: 0,
        connections: 0,
        reloads_promoted: 0,
        reloads_rejected: 0,
        checkpoint_fallback: 0,
        latency_us: Histogram::new(),
        batch_size: Histogram::new(),
    };
    // Recent drain cost, EWMA-smoothed nanoseconds per request — feeds
    // the adaptive Busy retry hint. 0 until the first batch lands.
    let mut drain_ewma_ns: u64 = 0;
    while let Some(batch) = ctl.queue.next_batch(cfg.max_batch, cfg.max_wait) {
        qnn_trace::span!("serve.batch");
        qnn_trace::counter!("serve.batches", 1);
        qnn_trace::counter!("serve.requests", batch.len() as u64);
        qnn_trace::observe!("serve.batch.size", batch.len() as f64);
        qnn_trace::gauge!("serve.queue.depth", ctl.queue.depth() as f64);
        stats.batches += 1;
        stats.batch_size.observe(batch.len() as f64);
        let drain_start = Instant::now();

        // Group by (pinned model version, precision tag) — a batch that
        // straddles a hot-reload swap splits into one group per epoch,
        // each computed on the bank set that admitted its requests —
        // then split each group into at most `engine_threads` contiguous
        // sub-batches, the work units the fan-out schedules. Unit
        // boundaries depend only on the batch composition and the
        // thread count, never on timing.
        let mut groups: BTreeMap<(u32, u8), Vec<usize>> = BTreeMap::new();
        for (i, req) in batch.iter().enumerate() {
            groups
                .entry((req.bank.version, req.tag))
                .or_default()
                .push(i);
        }
        let mut units: Vec<(u8, Vec<usize>)> = Vec::new();
        for ((version, tag), idxs) in groups {
            qnn_trace::counter!(format!("serve.requests.v{version}"), idxs.len() as u64);
            for range in par::partition(idxs.len(), engine_threads.min(idxs.len()).max(1)) {
                if !range.is_empty() {
                    units.push((tag, idxs[range].to_vec()));
                }
            }
        }

        // Fan the units out over at most `engine_threads` workers. Each
        // worker checks a replica out of its unit's *pinned* bank set
        // (all requests in a unit share one set by construction), runs
        // the stacked forward, and sends its responses directly —
        // per-request latencies come back for the stats fold. Workers
        // are pool workers, so kernels inside them run serial instead
        // of nesting.
        let unit_latencies = par::map_capped(units.len(), engine_threads, |u| {
            let (tag, idxs) = &units[u];
            let set = &batch[idxs[0]].bank;
            let version_byte = (set.version & 0xFF) as u8;
            let mut bank = checkout(&set.banks, u);
            qnn_trace::span!("serve.infer:{}", tag);
            let images: Vec<&[f32]> = idxs.iter().map(|&i| &*batch[i].image).collect();
            match bank.forward_batch_flat(*tag, &images) {
                Ok((flat, k)) => {
                    let mut latencies = Vec::with_capacity(idxs.len());
                    for (&i, row) in idxs.iter().zip(flat.chunks_exact(k)) {
                        let req = &batch[i];
                        qnn_trace::span!("serve.request");
                        let us = req.enqueued.elapsed().as_micros() as f64;
                        qnn_trace::observe!("serve.latency.us", us);
                        latencies.push(us);
                        let _ = req.reply.send(Frame::infer_ok_v(req.id, version_byte, row));
                    }
                    latencies
                }
                Err(e) => {
                    for &i in idxs {
                        let req = &batch[i];
                        let _ = req.reply.send(Frame::error(
                            req.id,
                            ErrorCode::Internal,
                            0,
                            &format!("forward failed: {e}"),
                        ));
                    }
                    Vec::new()
                }
            }
        });
        for us in unit_latencies.into_iter().flatten() {
            stats.latency_us.observe(us);
            stats.requests += 1;
        }

        // Refresh the adaptive backpressure hint from this batch's
        // measured drain rate and the depth left behind.
        let per_req_ns = (drain_start.elapsed().as_nanos() as u64) / batch.len().max(1) as u64;
        drain_ewma_ns = if drain_ewma_ns == 0 {
            per_req_ns
        } else {
            (3 * drain_ewma_ns + per_req_ns) / 4
        };
        let hint = queue::retry_hint_us(ctl.queue.depth(), drain_ewma_ns, ctl.hint_floor_us);
        ctl.retry_hint_us.store(hint, Ordering::Relaxed);
        qnn_trace::gauge!("serve.retry_hint.us", f64::from(hint));
    }
    // Drain complete: acknowledge every shutdown requester, then bring
    // the rest of the thread structure down.
    for (req_id, tx) in ctl.shutdown_waiters.lock().unwrap().drain(..) {
        let _ = tx.send(Frame::shutdown_ack(req_id));
    }
    ctl.stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr); // wake the accept loop
    stats.rejected_busy = ctl.rejected_busy.load(Ordering::Relaxed);
    stats.connections = ctl.connections.load(Ordering::Relaxed);
    stats.reloads_promoted = ctl.reloads_promoted.load(Ordering::Relaxed);
    stats.reloads_rejected = ctl.reloads_rejected.load(Ordering::Relaxed);
    stats.checkpoint_fallback = ctl.checkpoint_fallback.load(Ordering::Relaxed);
    qnn_trace::gauge!("serve.queue.depth", 0.0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_render_mentions_every_line() {
        let mut s = ServeStats {
            requests: 3,
            batches: 2,
            rejected_busy: 1,
            connections: 4,
            reloads_promoted: 5,
            reloads_rejected: 6,
            checkpoint_fallback: 0,
            latency_us: Histogram::new(),
            batch_size: Histogram::new(),
        };
        s.latency_us.observe(100.0);
        s.batch_size.observe(2.0);
        let text = s.render();
        assert!(text.contains("served 3 request(s)"), "{text}");
        assert!(text.contains("5 reload(s) promoted, 6 rejected"), "{text}");
        assert!(text.contains("batch size"), "{text}");
        assert!(text.contains("latency us"), "{text}");
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.max_batch >= 1);
        assert!(c.queue_cap >= c.max_batch);
        assert_eq!(c.seed, MODEL_SEED);
    }
}
