//! The server: an accept loop, one reader + one writer thread per
//! connection, and a single inference engine thread draining the
//! batching queue.
//!
//! ## Thread structure
//!
//! * **accept** — blocks in `TcpListener::accept`, spawns a handler per
//!   connection, exits when the stop flag rises (woken by a loopback
//!   self-connect).
//! * **handler** (per connection) — decodes frames with a 50 ms poll so
//!   it can observe the stop flag, validates them, and enqueues
//!   [`Request`]s. Malformed input answers with a typed error frame
//!   where the stream is still answerable, and never panics the server.
//! * **writer** (per connection) — owns the write half; everything sent
//!   to a connection (engine responses and handler rejections alike)
//!   funnels through one mpsc channel, so frames never interleave
//!   mid-write.
//! * **engine** — the only thread touching the [`ModelBank`]: drains
//!   batches, groups them by precision tag, runs one stacked Eval
//!   forward per group, and routes each logits row back. Because the
//!   engine is single-threaded, per-batch `qnn-trace` spans nest
//!   correctly; the data-parallel kernels inside the forward still fan
//!   out across the worker pool.
//!
//! ## Graceful shutdown
//!
//! A `Shutdown` frame (or [`Server::shutdown`]) closes the queue: new
//! work is refused with `ShuttingDown`, the engine drains every request
//! already accepted, acknowledges each shutdown requester with
//! `ShutdownAck` *after* the drain, raises the stop flag and wakes the
//! accept loop. [`Server::join`] then reaps every thread and returns the
//! run's [`ServeStats`].

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qnn_trace::Histogram;

use crate::model::{ModelBank, MODEL_SEED, NUM_PRECISIONS};
use crate::proto::{self, ErrorCode, Frame, FrameKind, ProtoError, HEADER_LEN};
use crate::queue::{BatchQueue, PushError, Request};
use crate::ServeError;

/// Tuning knobs for a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (report it via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Flush a batch as soon as this many requests are waiting.
    pub max_batch: usize,
    /// ... or when the oldest request has waited this long.
    pub max_wait: Duration,
    /// Queue capacity; pushes beyond it are rejected with `Busy`.
    pub queue_cap: usize,
    /// Model-bank seed (both ends of a soak run must agree).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_wait: Duration::from_micros(2000),
            queue_cap: 256,
            seed: MODEL_SEED,
        }
    }
}

/// What a finished server run did, returned by [`Server::join`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Inference requests answered with logits.
    pub requests: u64,
    /// Batches flushed through the engine.
    pub batches: u64,
    /// Requests rejected with `Busy` (backpressure).
    pub rejected_busy: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Per-request queue→response latency, microseconds.
    pub latency_us: Histogram,
    /// Requests per flushed batch.
    pub batch_size: Histogram,
}

impl ServeStats {
    /// A human-readable run summary (printed by `qnn serve` at exit).
    pub fn render(&self) -> String {
        format!(
            "served {} request(s) in {} batch(es) over {} connection(s); \
             {} busy rejection(s)\n\
             batch size  mean {:.2}  p50 {:.0}  p99 {:.0}  max {:.0}\n\
             latency us  mean {:.0}  p50 {:.0}  p99 {:.0}  max {:.0}\n",
            self.requests,
            self.batches,
            self.connections,
            self.rejected_busy,
            self.batch_size.mean(),
            self.batch_size.quantile(0.5),
            self.batch_size.quantile(0.99),
            if self.batch_size.count == 0 {
                0.0
            } else {
                self.batch_size.max
            },
            self.latency_us.mean(),
            self.latency_us.quantile(0.5),
            self.latency_us.quantile(0.99),
            if self.latency_us.count == 0 {
                0.0
            } else {
                self.latency_us.max
            },
        )
    }
}

/// Shared control state.
struct Ctl {
    queue: BatchQueue,
    /// Everything exits when this rises (set by the engine after drain).
    stop: AtomicBool,
    /// Connections that asked for shutdown, acked after the drain.
    shutdown_waiters: Mutex<Vec<(u64, mpsc::Sender<Frame>)>>,
    /// Busy rejections (handlers increment, engine folds into stats).
    rejected_busy: AtomicU64,
    /// Accepted connections.
    connections: AtomicU64,
    /// Expected image length in floats, for request validation.
    input_len: usize,
    /// Retry hint handed out with `Busy` rejections, microseconds.
    retry_hint_us: u32,
}

impl Ctl {
    fn begin_shutdown(&self) {
        self.queue.close();
    }
}

/// A running server; dropping it does *not* stop it — call
/// [`shutdown`](Server::shutdown) + [`join`](Server::join) (or have a
/// client send a `Shutdown` frame).
pub struct Server {
    addr: SocketAddr,
    ctl: Arc<Ctl>,
    engine: Option<JoinHandle<ServeStats>>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, builds the model bank, and spawns the thread structure.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on bind failure, and model-bank construction
    /// errors flattened into [`ServeError::Io`].
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        let bank =
            ModelBank::build(cfg.seed).map_err(|e| ServeError::Io(format!("model bank: {e}")))?;
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError::io(&e))?;
        let addr = listener.local_addr().map_err(|e| ServeError::io(&e))?;
        let retry_hint_us = (cfg.max_wait.as_micros() as u32).max(100);
        let ctl = Arc::new(Ctl {
            queue: BatchQueue::new(cfg.queue_cap),
            stop: AtomicBool::new(false),
            shutdown_waiters: Mutex::new(Vec::new()),
            rejected_busy: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            input_len: bank.input_len(),
            retry_hint_us,
        });

        let engine = {
            let ctl = Arc::clone(&ctl);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("qnn-serve-engine".to_string())
                .spawn(move || engine_loop(bank, &ctl, &cfg, addr))
                .map_err(|e| ServeError::io(&e))?
        };

        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let ctl = Arc::clone(&ctl);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("qnn-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &ctl, &handlers))
                .map_err(|e| ServeError::io(&e))?
        };

        Ok(Server {
            addr,
            ctl,
            engine: Some(engine),
            accept: Some(accept),
            handlers,
        })
    }

    /// The actually-bound address (resolves a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting work, drain what is
    /// queued. Pair with [`join`](Server::join).
    pub fn shutdown(&self) {
        self.ctl.begin_shutdown();
    }

    /// Blocks until the server has fully shut down (triggered by a
    /// client `Shutdown` frame or [`shutdown`](Server::shutdown)) and
    /// every thread is reaped; returns the run's stats.
    pub fn join(mut self) -> ServeStats {
        let stats = self
            .engine
            .take()
            .expect("join called once")
            .join()
            .unwrap_or_else(|_| ServeStats {
                requests: 0,
                batches: 0,
                rejected_busy: 0,
                connections: 0,
                latency_us: Histogram::new(),
                batch_size: Histogram::new(),
            });
        // The engine wakes the accept loop itself, but a second nudge is
        // harmless and covers an engine that panicked before its wake.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        stats
    }
}

fn accept_loop(listener: &TcpListener, ctl: &Arc<Ctl>, handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if ctl.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if ctl.stop.load(Ordering::SeqCst) {
            return; // the wake-up self-connect, or a straggler
        }
        ctl.connections.fetch_add(1, Ordering::Relaxed);
        qnn_trace::counter!("serve.connections", 1);
        let ctl = Arc::clone(ctl);
        if let Ok(h) = std::thread::Builder::new()
            .name("qnn-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &ctl))
        {
            handlers.lock().unwrap().push(h);
        }
    }
}

/// Outcome of one interruptible frame read.
enum ReadEvent {
    Frame(Frame),
    /// Peer closed cleanly on a frame boundary.
    Eof,
    /// The stop flag rose while waiting.
    Stopped,
    /// Malformed input; `req_id` is best-effort (0 when unrecoverable).
    Bad {
        err: ProtoError,
        req_id: u64,
    },
}

/// Reads exactly `buf.len()` bytes through the connection's poll
/// timeout, bailing out when the stop flag rises.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    got_before: usize,
    ctl: &Ctl,
) -> Result<(), ReadEvent> {
    use std::io::Read;
    let mut off = 0;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                return Err(if got_before + off == 0 {
                    ReadEvent::Eof
                } else {
                    ReadEvent::Bad {
                        err: ProtoError::Truncated {
                            got: got_before + off,
                        },
                        req_id: 0,
                    }
                });
            }
            Ok(n) => off += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctl.stop.load(Ordering::SeqCst) {
                    return Err(ReadEvent::Stopped);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ReadEvent::Bad {
                    err: ProtoError::Io { msg: e.to_string() },
                    req_id: 0,
                });
            }
        }
    }
    Ok(())
}

fn read_frame_interruptible(stream: &mut TcpStream, ctl: &Ctl) -> ReadEvent {
    let mut header_bytes = [0u8; HEADER_LEN];
    if let Err(ev) = fill(stream, &mut header_bytes, 0, ctl) {
        return ev;
    }
    // Best-effort request id for error replies: only meaningful once the
    // magic checks out.
    let magic_ok = header_bytes[..4] == proto::MAGIC.to_le_bytes();
    let req_id = if magic_ok {
        u64::from_le_bytes(header_bytes[8..16].try_into().unwrap())
    } else {
        0
    };
    let header = match proto::parse_header(&header_bytes) {
        Ok(h) => h,
        Err(err) => return ReadEvent::Bad { err, req_id },
    };
    // Past the header, the request id is known: stamp it onto any
    // mid-frame failure so the error frame can echo it.
    let stamp = |ev: ReadEvent| match ev {
        ReadEvent::Eof => ReadEvent::Bad {
            err: ProtoError::Truncated { got: HEADER_LEN },
            req_id,
        },
        ReadEvent::Bad { err, .. } => ReadEvent::Bad { err, req_id },
        other => other,
    };
    let mut payload = vec![0u8; header.payload_len as usize];
    if let Err(ev) = fill(stream, &mut payload, HEADER_LEN, ctl) {
        return stamp(ev);
    }
    let mut crc = [0u8; 4];
    if let Err(ev) = fill(stream, &mut crc, HEADER_LEN + payload.len(), ctl) {
        return stamp(ev);
    }
    match proto::finish_frame(&header_bytes, header, payload, u32::from_le_bytes(crc)) {
        Ok(frame) => ReadEvent::Frame(frame),
        Err(err) => ReadEvent::Bad { err, req_id },
    }
}

/// Whether a decode error poisons the stream (respond, then close) or
/// leaves it answerable and framed (respond, keep reading).
fn is_fatal(err: &ProtoError) -> bool {
    !matches!(err, ProtoError::BadPayload { .. })
}

fn handle_connection(stream: TcpStream, ctl: &Arc<Ctl>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name("qnn-serve-write".to_string())
        .spawn(move || writer_loop(write_half, &rx));
    let mut stream = stream;

    loop {
        match read_frame_interruptible(&mut stream, ctl) {
            ReadEvent::Eof | ReadEvent::Stopped => break,
            ReadEvent::Bad { err, req_id } => {
                qnn_trace::counter!("serve.rx.bad_frames", 1);
                if let Some(code) = err.as_error_code() {
                    let _ = tx.send(Frame::error(req_id, code, 0, &err.to_string()));
                }
                if is_fatal(&err) {
                    break;
                }
            }
            ReadEvent::Frame(frame) => match frame.kind {
                FrameKind::Infer => handle_infer(frame, &tx, ctl),
                FrameKind::Shutdown => {
                    ctl.shutdown_waiters
                        .lock()
                        .unwrap()
                        .push((frame.req_id, tx.clone()));
                    ctl.begin_shutdown();
                }
                // Server-bound streams carry requests only; a response
                // kind here is protocol misuse, answered but survivable.
                FrameKind::InferOk | FrameKind::Error | FrameKind::ShutdownAck => {
                    let _ = tx.send(Frame::error(
                        frame.req_id,
                        ErrorCode::BadKind,
                        0,
                        &format!("{:?} is not a request frame", frame.kind),
                    ));
                }
            },
        }
    }
    // Dropping tx lets the writer flush engine responses still in flight
    // for this connection (their Request clones keep the channel alive)
    // and exit once the last one is delivered.
    drop(tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

fn handle_infer(frame: Frame, tx: &mpsc::Sender<Frame>, ctl: &Ctl) {
    let req_id = frame.req_id;
    if frame.tag >= NUM_PRECISIONS {
        let _ = tx.send(Frame::error(
            req_id,
            ErrorCode::BadPrecision,
            0,
            &format!(
                "precision tag {} outside Table III (0..{})",
                frame.tag, NUM_PRECISIONS
            ),
        ));
        return;
    }
    let image = match frame.payload_f32s() {
        Ok(v) => v,
        Err(e) => {
            let _ = tx.send(Frame::error(
                req_id,
                ErrorCode::BadPayload,
                0,
                &e.to_string(),
            ));
            return;
        }
    };
    if image.len() != ctl.input_len {
        let _ = tx.send(Frame::error(
            req_id,
            ErrorCode::BadPayload,
            0,
            &format!(
                "image has {} floats, model wants {}",
                image.len(),
                ctl.input_len
            ),
        ));
        return;
    }
    let req = Request {
        id: req_id,
        tag: frame.tag,
        image,
        reply: tx.clone(),
        enqueued: Instant::now(),
    };
    match ctl.queue.try_push(req) {
        Ok(()) => {}
        Err(PushError::Full) => {
            ctl.rejected_busy.fetch_add(1, Ordering::Relaxed);
            qnn_trace::counter!("serve.rejected.busy", 1);
            let _ = tx.send(Frame::error(
                req_id,
                ErrorCode::Busy,
                ctl.retry_hint_us,
                "batching queue full",
            ));
        }
        Err(PushError::Closed) => {
            let _ = tx.send(Frame::error(
                req_id,
                ErrorCode::ShuttingDown,
                0,
                "server is draining",
            ));
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: &mpsc::Receiver<Frame>) {
    while let Ok(frame) = rx.recv() {
        let bytes = frame.encode();
        if stream
            .write_all(&bytes)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return; // peer gone; remaining responses have nowhere to go
        }
        qnn_trace::counter!("serve.tx.frames", 1);
    }
}

fn engine_loop(
    mut bank: ModelBank,
    ctl: &Arc<Ctl>,
    cfg: &ServeConfig,
    addr: SocketAddr,
) -> ServeStats {
    let mut stats = ServeStats {
        requests: 0,
        batches: 0,
        rejected_busy: 0,
        connections: 0,
        latency_us: Histogram::new(),
        batch_size: Histogram::new(),
    };
    while let Some(batch) = ctl.queue.next_batch(cfg.max_batch, cfg.max_wait) {
        qnn_trace::span!("serve.batch");
        qnn_trace::counter!("serve.batches", 1);
        qnn_trace::counter!("serve.requests", batch.len() as u64);
        qnn_trace::observe!("serve.batch.size", batch.len() as f64);
        qnn_trace::gauge!("serve.queue.depth", ctl.queue.depth() as f64);
        stats.batches += 1;
        stats.batch_size.observe(batch.len() as f64);

        // Group by precision tag; one stacked forward per group.
        let mut groups: BTreeMap<u8, Vec<usize>> = BTreeMap::new();
        for (i, req) in batch.iter().enumerate() {
            groups.entry(req.tag).or_default().push(i);
        }
        for (tag, idxs) in groups {
            qnn_trace::span!("serve.infer:{}", tag);
            let images: Vec<&[f32]> = idxs.iter().map(|&i| batch[i].image.as_slice()).collect();
            match bank.forward_batch(tag, &images) {
                Ok(rows) => {
                    for (&i, row) in idxs.iter().zip(rows.iter()) {
                        let req = &batch[i];
                        qnn_trace::span!("serve.request");
                        let us = req.enqueued.elapsed().as_micros() as f64;
                        qnn_trace::observe!("serve.latency.us", us);
                        stats.latency_us.observe(us);
                        stats.requests += 1;
                        let _ = req.reply.send(Frame::infer_ok(req.id, row));
                    }
                }
                Err(e) => {
                    for &i in &idxs {
                        let req = &batch[i];
                        let _ = req.reply.send(Frame::error(
                            req.id,
                            ErrorCode::Internal,
                            0,
                            &format!("forward failed: {e}"),
                        ));
                    }
                }
            }
        }
    }
    // Drain complete: acknowledge every shutdown requester, then bring
    // the rest of the thread structure down.
    for (req_id, tx) in ctl.shutdown_waiters.lock().unwrap().drain(..) {
        let _ = tx.send(Frame::shutdown_ack(req_id));
    }
    ctl.stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr); // wake the accept loop
    stats.rejected_busy = ctl.rejected_busy.load(Ordering::Relaxed);
    stats.connections = ctl.connections.load(Ordering::Relaxed);
    qnn_trace::gauge!("serve.queue.depth", 0.0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_render_mentions_every_line() {
        let mut s = ServeStats {
            requests: 3,
            batches: 2,
            rejected_busy: 1,
            connections: 4,
            latency_us: Histogram::new(),
            batch_size: Histogram::new(),
        };
        s.latency_us.observe(100.0);
        s.batch_size.observe(2.0);
        let text = s.render();
        assert!(text.contains("served 3 request(s)"), "{text}");
        assert!(text.contains("batch size"), "{text}");
        assert!(text.contains("latency us"), "{text}");
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.max_batch >= 1);
        assert!(c.queue_cap >= c.max_batch);
        assert_eq!(c.seed, MODEL_SEED);
    }
}
