//! Reusable `f32` slab arena for the request hot path.
//!
//! Every inference request needs one image-sized float buffer between
//! frame decode and the engine's batched forward. Allocating it per
//! request puts an allocator round-trip on the hot path and (worse)
//! makes steady-state throughput depend on allocator behaviour; the
//! arena instead recycles slabs — a request checks one out
//! ([`Arena::take`]), carries it through the queue into the engine, and
//! the slab returns to the pool when the [`Request`](crate::queue::Request)
//! is dropped after its response is sent.
//!
//! ## Ownership and lifetime
//!
//! A [`Slab`] *owns* its buffer; the arena only keeps a free list. The
//! pool's high-water mark is therefore bounded by the maximum number of
//! in-flight requests (queue capacity plus one draining batch) — slabs
//! never accumulate beyond what the server actually had in flight at
//! once.
//!
//! ## Accounting
//!
//! The arena counts every byte it genuinely allocates (fresh slabs and
//! capacity growth of recycled ones) into [`Arena::allocated_bytes`] and
//! the `serve.alloc.bytes` trace counter. Reuse costs zero, so in steady
//! state — once the pool holds enough slabs of the right size — the
//! counter stops moving. The arena-reuse test pins exactly that: no
//! allocation growth after warmup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Inner {
    free: Mutex<Vec<Vec<f32>>>,
    allocated: AtomicU64,
}

impl Inner {
    fn count_alloc(&self, floats: usize) {
        let bytes = (floats * std::mem::size_of::<f32>()) as u64;
        self.allocated.fetch_add(bytes, Ordering::Relaxed);
        qnn_trace::counter!("serve.alloc.bytes", bytes);
    }
}

/// A shared pool of reusable `Vec<f32>` slabs. Cloning shares the pool.
#[derive(Clone)]
pub struct Arena {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("free", &self.inner.free.lock().unwrap().len())
            .field("allocated_bytes", &self.allocated_bytes())
            .finish()
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// An empty pool.
    pub fn new() -> Arena {
        Arena {
            inner: Arc::new(Inner {
                free: Mutex::new(Vec::new()),
                allocated: AtomicU64::new(0),
            }),
        }
    }

    /// Checks out an empty slab with capacity for at least `capacity`
    /// floats, recycling a pooled buffer when one is available and only
    /// allocating (counted) when the pool is empty or the recycled
    /// buffer is too small.
    pub fn take(&self, capacity: usize) -> Slab {
        let mut data = self.inner.free.lock().unwrap().pop().unwrap_or_default();
        data.clear();
        if data.capacity() < capacity {
            self.inner.count_alloc(capacity - data.capacity());
            data.reserve(capacity - data.capacity());
        }
        Slab {
            data,
            home: Arc::clone(&self.inner),
        }
    }

    /// Total bytes this arena has genuinely allocated since creation.
    /// Flat across steady-state request traffic — the arena-reuse test's
    /// assertion.
    pub fn allocated_bytes(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Slabs currently pooled (checked back in, awaiting reuse).
    pub fn pooled(&self) -> usize {
        self.inner.free.lock().unwrap().len()
    }
}

/// An owned float buffer checked out of an [`Arena`]; returns itself to
/// the pool on drop. Dereferences to the slice; use
/// [`as_mut_vec`](Slab::as_mut_vec) to fill it.
pub struct Slab {
    data: Vec<f32>,
    home: Arc<Inner>,
}

impl Slab {
    /// The underlying vector, for filling the slab in place. Growing it
    /// past the checked-out capacity allocates *uncounted* — callers
    /// should size the [`Arena::take`] hint correctly instead.
    pub fn as_mut_vec(&mut self) -> &mut Vec<f32> {
        &mut self.data
    }
}

impl std::ops::Deref for Slab {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::fmt::Debug for Slab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Slab({} floats)", self.data.len())
    }
}

impl Drop for Slab {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        self.home.free.lock().unwrap().push(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_allocates_then_reuses() {
        let a = Arena::new();
        {
            let _s = a.take(64);
            assert_eq!(a.allocated_bytes(), 256);
        }
        assert_eq!(a.pooled(), 1);
        {
            // Same-size checkout after return: no new allocation.
            let _s = a.take(64);
            assert_eq!(a.allocated_bytes(), 256);
            assert_eq!(a.pooled(), 0);
        }
        // Growth of a recycled slab counts only the delta.
        let _s = a.take(96);
        assert_eq!(a.allocated_bytes(), 384);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_slabs() {
        let a = Arena::new();
        let mut s1 = a.take(4);
        let mut s2 = a.take(4);
        s1.as_mut_vec().push(1.0);
        s2.as_mut_vec().push(2.0);
        assert_eq!(&s1[..], &[1.0]);
        assert_eq!(&s2[..], &[2.0]);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let a = Arena::new();
        // Warmup: create the pool's working set.
        for _ in 0..4 {
            let mut s = a.take(64);
            s.as_mut_vec().extend(std::iter::repeat_n(0.5, 64));
        }
        let after_warmup = a.allocated_bytes();
        for _ in 0..1000 {
            let mut s = a.take(64);
            s.as_mut_vec().extend(std::iter::repeat_n(0.5, 64));
        }
        assert_eq!(a.allocated_bytes(), after_warmup);
    }
}
