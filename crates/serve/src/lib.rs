#![warn(missing_docs)]

//! # qnn-serve — batched inference over TCP, bit-identical to single-shot
//!
//! The serving front-end the ROADMAP's "heavy traffic" north star calls
//! for: a std-only TCP server that funnels concurrent client requests
//! into a dynamic batching queue, runs stacked Eval-mode forwards through
//! the `PlanCache`/native-kernel path once per precision group, and
//! streams responses back — each bit-identical to a single-shot forward
//! of the same image (the invariant `model::tests` pins and the
//! `serve-soak` CI stage enforces end to end).
//!
//! * [`proto`] — the `QSRV` length-prefixed binary wire format: fixed
//!   header (magic, version, kind, precision tag, request id, payload
//!   length), payload, CRC32 trailer (reusing `qnn_faults::crc32`).
//!   Every way a frame can be wrong decodes to a typed [`ProtoError`],
//!   never a panic.
//! * [`arena`] — the recycled-slab float arena the zero-copy decode path
//!   draws request buffers from; steady-state serving allocates nothing
//!   per request (the `serve.alloc.bytes` counter goes flat).
//! * [`model`] — the [`ModelBank`]: one calibrated network per Table III
//!   precision, shared by server and load generator via [`MODEL_SEED`].
//! * [`lifecycle`] — versioned hot-reload: [`BankCheckpoint`] (a `QNNF`
//!   snapshot of the seed + base weights, `.bak`-rotated on save), the
//!   [`canary_gate`] that probes a candidate bank before promotion, and
//!   the typed [`ReloadError`] reasons a reload can be refused for.
//! * [`queue`] — the bounded dynamic-batching queue: flush on
//!   `max_batch` or `max_wait`, whichever first; reject when full
//!   (backpressure, surfaced to clients as a `Busy` error frame with a
//!   retry-after hint).
//! * [`server`] — the accept/handler/engine thread structure, graceful
//!   shutdown draining in-flight batches, and per-batch `qnn-trace`
//!   telemetry (queue-depth gauge, batch-size histogram, per-request
//!   latency histogram).
//! * [`client`] — a small blocking client used by the `qnn-bench
//!   serve-soak` load generator, the e2e tests, and anyone scripting
//!   against the server.
//! * [`membership`] — the heartbeat-driven liveness table: a pure state
//!   machine (mark-dead after `k_misses` unanswered `Ping`s, one `Pong`
//!   revives) plus the typed-error probe that feeds it.
//! * [`cluster`] — the [`Router`]: consistent-hashes `(req_id,
//!   precision)` across N shard workers (each a stock [`Server`]),
//!   fails over to the ring successor when a shard dies mid-request,
//!   and answers `ShardDown` — typed, retryable — when nothing is live.
//!   Bit-identical answers from any replica, never a hang.
//!
//! ## Example (in-process round trip)
//!
//! ```
//! use qnn_serve::{client::ServeClient, model, server::{ServeConfig, Server}};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut bank = model::ModelBank::default_bank().unwrap();
//! let image = model::test_image(model::MODEL_SEED, 0, bank.input_len());
//!
//! let mut client = ServeClient::connect(&server.local_addr().to_string()).unwrap();
//! let logits = client.infer(3, &image).unwrap(); // tag 3 = Fixed-Point (8,8)
//! assert_eq!(logits, bank.forward_single(3, &image).unwrap());
//!
//! client.shutdown_server().unwrap();
//! server.join();
//! ```

pub mod arena;
pub mod client;
pub mod cluster;
pub mod lifecycle;
pub mod membership;
pub mod model;
pub mod proto;
pub mod queue;
pub mod server;

pub use arena::{Arena, Slab};
pub use client::ServeClient;
pub use cluster::{HashRing, Router, RouterConfig, RouterStats};
pub use lifecycle::{canary_gate, BankCheckpoint, CanaryReport, ReloadError};
pub use membership::{DownReason, Membership, ProbeError, ShardState, Transition};
pub use model::{ModelBank, MODEL_SEED, NUM_PRECISIONS};
pub use proto::{ErrorCode, Frame, FrameKind, ProtoError};
pub use server::{ServeConfig, ServeStats, Server};

use std::fmt;

/// Errors surfaced by the client API and the server's request path.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A socket-level failure (connect, read, write), flattened to keep
    /// this type `Clone + PartialEq`.
    Io(String),
    /// The byte stream did not decode as a `QSRV` frame.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Rejected {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Microseconds the client should wait before retrying (only
        /// meaningful for [`ErrorCode::Busy`]).
        retry_after_us: u32,
        /// Human-readable detail.
        msg: String,
    },
    /// The server answered with a frame kind the client did not expect.
    UnexpectedFrame(FrameKind),
}

impl ServeError {
    /// True when the server rejected the request with `Busy` — the one
    /// rejection a client is invited to retry after the hinted delay.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ServeError::Rejected {
                code: ErrorCode::Busy,
                ..
            }
        )
    }

    /// True for any retryable rejection: `Busy` backpressure or a
    /// router's `ShardDown` failover window (see
    /// [`ErrorCode::is_retryable`]).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Rejected { code, .. } if code.is_retryable())
    }

    pub(crate) fn io(e: &std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "i/o: {msg}"),
            ServeError::Proto(e) => write!(f, "protocol: {e}"),
            ServeError::Rejected {
                code,
                retry_after_us,
                msg,
            } => {
                write!(f, "rejected ({code:?}): {msg}")?;
                if *retry_after_us > 0 {
                    write!(f, " [retry after {retry_after_us}us]")?;
                }
                Ok(())
            }
            ServeError::UnexpectedFrame(kind) => write!(f, "unexpected frame {kind:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Proto(e)
    }
}
