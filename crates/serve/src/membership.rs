//! Shard membership: who is alive, decided by heartbeats.
//!
//! The router probes every shard with a `QSRV` `Ping` frame once per
//! heartbeat interval. The bookkeeping lives in [`Membership`], a pure
//! state machine with no sockets, threads, or clocks — the router's
//! heartbeat threads feed it [`on_pong`](Membership::on_pong) /
//! [`on_miss`](Membership::on_miss) events, and the forwarding path
//! feeds it [`on_transport_failure`](Membership::on_transport_failure)
//! when a shard connection dies mid-request. Keeping it pure is what
//! lets `tests/membership_props.rs` drive ≥256 seeded event schedules
//! (misses at every offset, duplicated and reordered pongs, flapping)
//! through it and assert the transition contract exhaustively.
//!
//! ## Contract
//!
//! * A shard starts [`ShardState::Up`] with zero misses.
//! * [`on_pong`](Membership::on_pong) resets the miss count; on a
//!   [`ShardState::Down`] shard it also revives it (the *only* way back
//!   up), yielding [`Transition::CameUp`]. Duplicate pongs are idempotent.
//! * [`on_miss`](Membership::on_miss) increments the miss count; the
//!   `k_misses`-th consecutive miss on an `Up` shard yields
//!   [`Transition::WentDown`]. Further misses accumulate silently.
//! * [`on_transport_failure`](Membership::on_transport_failure) marks an
//!   `Up` shard down *immediately* — a request already found the corpse,
//!   no need to wait out the heartbeat budget.
//! * Every event on a shard index outside the cluster is a typed
//!   [`MembershipError::UnknownShard`]. Nothing here panics.
//!
//! The probe half — [`ping_shard`] — does one Ping/Pong exchange over a
//! caller-owned connection, mapping every failure mode (timeout, EOF,
//! garbage bytes, a typed error frame, the wrong frame kind) to a typed
//! [`ProbeError`]. Its read deadline comes from the socket's read
//! timeout, so a silent peer costs one timeout, never a hang.

use std::fmt;
use std::io::Write;
use std::net::TcpStream;

use crate::proto::{read_frame, Frame, FrameKind, ProtoError};

/// Index of a shard in the router's configuration order.
pub type ShardId = usize;

/// Why a shard is considered dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownReason {
    /// `k_misses` consecutive heartbeats went unanswered.
    MissedBeats,
    /// A forwarded request hit a dead connection (EOF, reset, timeout) —
    /// faster than waiting out the heartbeat budget.
    TransportFailure,
}

/// Liveness of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Answering heartbeats; eligible for routing.
    Up,
    /// Marked dead; skipped by the router until a pong revives it.
    Down(DownReason),
}

/// A state change produced by a membership event — what the router
/// turns into `router.shard.{up,down}` trace counters and gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// A down shard answered a heartbeat again.
    CameUp(ShardId),
    /// An up shard was marked dead.
    WentDown(ShardId, DownReason),
}

/// The typed failure of a membership event: the shard index does not
/// exist. (The only way to misuse the pure state machine.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipError {
    /// The out-of-range index.
    pub shard: ShardId,
    /// How many shards the cluster actually has.
    pub cluster_size: usize,
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} outside cluster of {}",
            self.shard, self.cluster_size
        )
    }
}

impl std::error::Error for MembershipError {}

struct Slot {
    state: ShardState,
    misses: u32,
}

/// The pure membership state machine: per-shard liveness driven by
/// heartbeat events. See the module docs for the transition contract.
pub struct Membership {
    slots: Vec<Slot>,
    k_misses: u32,
}

impl Membership {
    /// A cluster of `n` shards, all starting `Up`, marked dead after
    /// `k_misses` consecutive unanswered heartbeats (clamped to ≥ 1).
    pub fn new(n: usize, k_misses: u32) -> Membership {
        Membership {
            slots: (0..n)
                .map(|_| Slot {
                    state: ShardState::Up,
                    misses: 0,
                })
                .collect(),
            k_misses: k_misses.max(1),
        }
    }

    /// Number of shards in the cluster.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for a zero-shard cluster (nothing can ever be routed).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured consecutive-miss budget.
    pub fn k_misses(&self) -> u32 {
        self.k_misses
    }

    /// Current state of `shard`.
    ///
    /// # Errors
    ///
    /// [`MembershipError`] for an out-of-range index.
    pub fn state(&self, shard: ShardId) -> Result<ShardState, MembershipError> {
        self.slot(shard).map(|s| s.state)
    }

    /// True when `shard` is in range and currently `Up`. (The routing
    /// fast path: an out-of-range index is simply not live.)
    pub fn is_up(&self, shard: ShardId) -> bool {
        matches!(self.state(shard), Ok(ShardState::Up))
    }

    /// How many shards are currently `Up`.
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == ShardState::Up)
            .count()
    }

    /// A heartbeat answered: reset the miss count, revive if down.
    ///
    /// # Errors
    ///
    /// [`MembershipError`] for an out-of-range index.
    pub fn on_pong(&mut self, shard: ShardId) -> Result<Option<Transition>, MembershipError> {
        let slot = self.slot_mut(shard)?;
        slot.misses = 0;
        if matches!(slot.state, ShardState::Down(_)) {
            slot.state = ShardState::Up;
            return Ok(Some(Transition::CameUp(shard)));
        }
        Ok(None)
    }

    /// A heartbeat went unanswered: one more consecutive miss. The
    /// `k_misses`-th miss on an `Up` shard marks it down.
    ///
    /// # Errors
    ///
    /// [`MembershipError`] for an out-of-range index.
    pub fn on_miss(&mut self, shard: ShardId) -> Result<Option<Transition>, MembershipError> {
        let k = self.k_misses;
        let slot = self.slot_mut(shard)?;
        slot.misses = slot.misses.saturating_add(1);
        if slot.state == ShardState::Up && slot.misses >= k {
            slot.state = ShardState::Down(DownReason::MissedBeats);
            return Ok(Some(Transition::WentDown(shard, DownReason::MissedBeats)));
        }
        Ok(None)
    }

    /// A forwarded request found the shard's connection dead: mark it
    /// down immediately (an `Up` shard only; a dead one stays dead with
    /// its original reason).
    ///
    /// # Errors
    ///
    /// [`MembershipError`] for an out-of-range index.
    pub fn on_transport_failure(
        &mut self,
        shard: ShardId,
    ) -> Result<Option<Transition>, MembershipError> {
        let k = self.k_misses;
        let slot = self.slot_mut(shard)?;
        if slot.state == ShardState::Up {
            // Charge the full miss budget so a single pong revives it
            // (misses reset to 0) rather than leaving a half-spent count.
            slot.misses = k;
            slot.state = ShardState::Down(DownReason::TransportFailure);
            return Ok(Some(Transition::WentDown(
                shard,
                DownReason::TransportFailure,
            )));
        }
        Ok(None)
    }

    fn slot(&self, shard: ShardId) -> Result<&Slot, MembershipError> {
        self.slots.get(shard).ok_or(MembershipError {
            shard,
            cluster_size: self.slots.len(),
        })
    }

    fn slot_mut(&mut self, shard: ShardId) -> Result<&mut Slot, MembershipError> {
        let n = self.slots.len();
        self.slots.get_mut(shard).ok_or(MembershipError {
            shard,
            cluster_size: n,
        })
    }
}

/// Every way a single Ping/Pong probe can fail. All of them count as a
/// miss; none of them panic or hang (the socket's read timeout bounds
/// the wait).
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeError {
    /// The Ping could not be written (connection already dead).
    Send(String),
    /// The answer did not decode as a `QSRV` frame — garbage bytes, a
    /// truncated stream, a timeout, EOF.
    Recv(ProtoError),
    /// A well-formed frame arrived, but not a `Pong` (a typed error
    /// frame or protocol misuse).
    Unexpected(FrameKind),
    /// Well-formed `Pong`s arrived, but none echoed our request id
    /// within the stray-frame budget.
    WrongId {
        /// The id the Ping carried.
        sent: u64,
        /// The id on the last frame seen.
        got: u64,
    },
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Send(msg) => write!(f, "ping send failed: {msg}"),
            ProbeError::Recv(e) => write!(f, "ping answer unreadable: {e}"),
            ProbeError::Unexpected(kind) => write!(f, "expected Pong, got {kind:?}"),
            ProbeError::WrongId { sent, got } => {
                write!(f, "pong id mismatch: sent {sent}, last saw {got}")
            }
        }
    }
}

impl std::error::Error for ProbeError {}

/// Stray frames a probe will skip before giving up on finding its Pong.
const PROBE_STRAY_BUDGET: usize = 8;

/// One Ping/Pong exchange over a caller-owned connection. The caller
/// sets the socket's read timeout (that deadline is what bounds a
/// silent peer) and owns reconnect policy; any `Err` means "count a
/// miss and drop this connection".
///
/// # Errors
///
/// A typed [`ProbeError`] for every failure mode — garbage bytes,
/// truncation, timeout, a non-Pong frame, an id mismatch. Never panics,
/// never blocks past the socket timeout.
pub fn ping_shard(conn: &mut TcpStream, req_id: u64) -> Result<(), ProbeError> {
    let ping = Frame::ping(req_id).encode();
    conn.write_all(&ping)
        .and_then(|()| conn.flush())
        .map_err(|e| ProbeError::Send(e.to_string()))?;
    let mut last_id = 0;
    for _ in 0..PROBE_STRAY_BUDGET {
        let frame = read_frame(conn).map_err(ProbeError::Recv)?;
        last_id = frame.req_id;
        if frame.kind != FrameKind::Pong {
            return Err(ProbeError::Unexpected(frame.kind));
        }
        if frame.req_id == req_id {
            return Ok(());
        }
        // A stale Pong from an earlier timed-out probe: skip it.
    }
    Err(ProbeError::WrongId {
        sent: req_id,
        got: last_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_misses_marks_down_and_one_pong_revives() {
        let mut m = Membership::new(2, 3);
        assert_eq!(m.on_miss(0).unwrap(), None);
        assert_eq!(m.on_miss(0).unwrap(), None);
        assert_eq!(
            m.on_miss(0).unwrap(),
            Some(Transition::WentDown(0, DownReason::MissedBeats))
        );
        assert_eq!(
            m.state(0).unwrap(),
            ShardState::Down(DownReason::MissedBeats)
        );
        assert!(m.is_up(1), "shard 1 untouched");
        assert_eq!(m.live_count(), 1);
        // Further misses are silent; one pong revives.
        assert_eq!(m.on_miss(0).unwrap(), None);
        assert_eq!(m.on_pong(0).unwrap(), Some(Transition::CameUp(0)));
        assert!(m.is_up(0));
    }

    #[test]
    fn pong_resets_the_miss_count() {
        let mut m = Membership::new(1, 2);
        m.on_miss(0).unwrap();
        m.on_pong(0).unwrap();
        // The earlier miss no longer counts toward the budget.
        assert_eq!(m.on_miss(0).unwrap(), None);
        assert!(m.is_up(0));
    }

    #[test]
    fn transport_failure_is_immediate_but_only_once() {
        let mut m = Membership::new(1, 5);
        assert_eq!(
            m.on_transport_failure(0).unwrap(),
            Some(Transition::WentDown(0, DownReason::TransportFailure))
        );
        // Already down: no second transition, reason unchanged.
        assert_eq!(m.on_transport_failure(0).unwrap(), None);
        assert_eq!(
            m.state(0).unwrap(),
            ShardState::Down(DownReason::TransportFailure)
        );
        // One pong is enough to come back.
        assert_eq!(m.on_pong(0).unwrap(), Some(Transition::CameUp(0)));
    }

    #[test]
    fn unknown_shard_is_a_typed_error_everywhere() {
        let mut m = Membership::new(2, 3);
        let err = MembershipError {
            shard: 2,
            cluster_size: 2,
        };
        assert_eq!(m.state(2).unwrap_err(), err);
        assert_eq!(m.on_pong(2).unwrap_err(), err);
        assert_eq!(m.on_miss(2).unwrap_err(), err);
        assert_eq!(m.on_transport_failure(2).unwrap_err(), err);
        assert!(!m.is_up(2));
    }

    #[test]
    fn k_misses_is_clamped_to_one() {
        let mut m = Membership::new(1, 0);
        assert_eq!(m.k_misses(), 1);
        assert_eq!(
            m.on_miss(0).unwrap(),
            Some(Transition::WentDown(0, DownReason::MissedBeats))
        );
    }
}
