//! A small blocking client for the `QSRV` protocol — what the
//! `qnn-bench serve-soak` load generator, the e2e tests, and scripts
//! drive the server with.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{read_frame, Frame, FrameKind};
use crate::ServeError;

/// One connection to a `qnn-serve` server.
///
/// Writes go straight to the socket with `TCP_NODELAY` set (request
/// frames are small; Nagle coalescing would stall the pipelined path
/// behind delayed ACKs), reads come through a buffer so each frame costs
/// one `read` syscall instead of three.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7117"`). Reads time out
    /// after 30 s so a wedged server surfaces as an error, not a hang.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connect failure.
    pub fn connect(addr: &str) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::io(&e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| ServeError::io(&e))?;
        stream.set_nodelay(true).map_err(|e| ServeError::io(&e))?;
        // The clone shares the socket (and its options) with `stream`;
        // it exists only to give the reader its own buffered handle.
        let reader = BufReader::new(stream.try_clone().map_err(|e| ServeError::io(&e))?);
        Ok(ServeClient {
            stream,
            reader,
            next_id: 1,
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ServeError> {
        self.stream
            .write_all(&frame.encode())
            .and_then(|()| self.stream.flush())
            .map_err(|e| ServeError::io(&e))
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Reads response frames until one matches `req_id` (responses to
    /// pipelined requests may interleave; strays are dropped).
    fn recv_for(&mut self, req_id: u64) -> Result<Frame, ServeError> {
        loop {
            let frame = read_frame(&mut self.reader)?;
            if frame.req_id == req_id {
                return Ok(frame);
            }
        }
    }

    /// Sends one inference request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] carrying the server's typed error frame
    /// (check [`is_busy`](ServeError::is_busy) for retryable
    /// backpressure), [`ServeError::Proto`]/[`ServeError::Io`] on
    /// transport trouble.
    pub fn infer(&mut self, tag: u8, image: &[f32]) -> Result<Vec<f32>, ServeError> {
        let id = self.next_id();
        self.send(&Frame::infer(id, tag, image))?;
        let frame = self.recv_for(id)?;
        match frame.kind {
            FrameKind::InferOk => Ok(frame.payload_f32s()?),
            FrameKind::Error => {
                let (code, retry_after_us, msg) = frame.error_info()?;
                Err(ServeError::Rejected {
                    code,
                    retry_after_us,
                    msg,
                })
            }
            other => Err(ServeError::UnexpectedFrame(other)),
        }
    }

    /// [`infer`](ServeClient::infer) that also returns the model-version
    /// byte the server stamped into the response (`version % 256`) —
    /// what the reload soak uses to pick which version's local bank to
    /// verify each response against.
    ///
    /// # Errors
    ///
    /// Same as [`infer`](ServeClient::infer).
    pub fn infer_versioned(
        &mut self,
        tag: u8,
        image: &[f32],
    ) -> Result<(u8, Vec<f32>), ServeError> {
        let id = self.next_id();
        self.send(&Frame::infer(id, tag, image))?;
        let frame = self.recv_for(id)?;
        match frame.kind {
            FrameKind::InferOk => Ok((frame.tag, frame.payload_f32s()?)),
            FrameKind::Error => {
                let (code, retry_after_us, msg) = frame.error_info()?;
                Err(ServeError::Rejected {
                    code,
                    retry_after_us,
                    msg,
                })
            }
            other => Err(ServeError::UnexpectedFrame(other)),
        }
    }

    /// Asks the server (or a router, which rolls it across every live
    /// shard) to hot-reload the `QNNF` bank checkpoint at `path` —
    /// resolved against the *server's* filesystem. Blocks for the
    /// verdict: the promoted `(version, seed)` on success.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] with [`crate::ErrorCode::ReloadRejected`]
    /// carrying the typed refusal reason (corrupt checkpoint, canary
    /// divergence, a reload already in flight…) — the previous version
    /// is still serving whenever this returns `Err`.
    pub fn reload(&mut self, path: &str) -> Result<(u32, u64), ServeError> {
        let id = self.next_id();
        self.send(&Frame::reload(id, path))?;
        let frame = self.recv_for(id)?;
        match frame.kind {
            FrameKind::ReloadOk => Ok(frame.reload_ok_info()?),
            FrameKind::Error => {
                let (code, retry_after_us, msg) = frame.error_info()?;
                Err(ServeError::Rejected {
                    code,
                    retry_after_us,
                    msg,
                })
            }
            other => Err(ServeError::UnexpectedFrame(other)),
        }
    }

    /// [`infer`](ServeClient::infer), retrying `Busy` rejections after
    /// each one's hinted delay, up to `max_retries` times. Returns the
    /// logits and how many retries it took.
    ///
    /// # Errors
    ///
    /// The final error once retries are exhausted, or any non-`Busy`
    /// failure immediately.
    pub fn infer_retry(
        &mut self,
        tag: u8,
        image: &[f32],
        max_retries: usize,
    ) -> Result<(Vec<f32>, usize), ServeError> {
        let mut retries = 0;
        loop {
            match self.infer(tag, image) {
                Ok(logits) => return Ok((logits, retries)),
                Err(e) if e.is_busy() && retries < max_retries => {
                    let hint = match &e {
                        ServeError::Rejected { retry_after_us, .. } => *retry_after_us,
                        _ => 0,
                    };
                    std::thread::sleep(Duration::from_micros(u64::from(hint.clamp(100, 50_000))));
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`infer`](ServeClient::infer) against a router, retrying every
    /// *retryable* rejection — `Busy` (backpressure) and `ShardDown`
    /// (failover in progress) — after each one's hinted delay, up to
    /// `max_retries` times. Returns the logits and how many retries of
    /// each kind it took, `(busy, shard_down)`.
    ///
    /// # Errors
    ///
    /// The final error once retries are exhausted, or any non-retryable
    /// failure immediately.
    pub fn infer_retry_routed(
        &mut self,
        tag: u8,
        image: &[f32],
        max_retries: usize,
    ) -> Result<(Vec<f32>, usize, usize), ServeError> {
        let (mut busy, mut shard_down) = (0usize, 0usize);
        loop {
            match self.infer(tag, image) {
                Ok(logits) => return Ok((logits, busy, shard_down)),
                Err(ServeError::Rejected {
                    code,
                    retry_after_us,
                    ..
                }) if code.is_retryable() && busy + shard_down < max_retries => {
                    if code == crate::ErrorCode::Busy {
                        busy += 1;
                    } else {
                        shard_down += 1;
                    }
                    std::thread::sleep(Duration::from_micros(u64::from(
                        retry_after_us.clamp(100, 50_000),
                    )));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends a liveness probe and blocks for the matching `Pong`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::UnexpectedFrame`] /
    /// [`ServeError::Rejected`] if the peer answers anything else.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let id = self.next_id();
        self.send(&Frame::ping(id))?;
        let frame = self.recv_for(id)?;
        match frame.kind {
            FrameKind::Pong => Ok(()),
            FrameKind::Error => {
                let (code, retry_after_us, msg) = frame.error_info()?;
                Err(ServeError::Rejected {
                    code,
                    retry_after_us,
                    msg,
                })
            }
            other => Err(ServeError::UnexpectedFrame(other)),
        }
    }

    /// Asks the server to drain and stop; blocks until the post-drain
    /// `ShutdownAck` arrives.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::UnexpectedFrame`] /
    /// [`ServeError::Rejected`] if the server answers anything else.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        let id = self.next_id();
        self.send(&Frame::shutdown(id))?;
        let frame = self.recv_for(id)?;
        match frame.kind {
            FrameKind::ShutdownAck => Ok(()),
            FrameKind::Error => {
                let (code, retry_after_us, msg) = frame.error_info()?;
                Err(ServeError::Rejected {
                    code,
                    retry_after_us,
                    msg,
                })
            }
            other => Err(ServeError::UnexpectedFrame(other)),
        }
    }

    /// Sends raw bytes down the socket — the malformed-input hammer the
    /// protocol tests use. Not part of the polite API.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| ServeError::io(&e))
    }

    /// Reads one frame off the socket (for tests driving `send_raw`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Proto`] with the decode failure.
    pub fn recv_frame(&mut self) -> Result<Frame, ServeError> {
        Ok(read_frame(&mut self.reader)?)
    }

    /// Half-closes the write side, so the server sees EOF while this end
    /// can still read any final response (used by truncation tests).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on failure.
    pub fn finish_writes(&mut self) -> Result<(), ServeError> {
        self.stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| ServeError::io(&e))
    }

    /// Tightens the read timeout (tests use short ones to prove the
    /// server answers promptly rather than hanging).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on failure.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ServeError> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ServeError::io(&e))
    }

    /// Fire-and-forget pipelining: send an inference request without
    /// waiting, returning its request id for a later
    /// [`recv_frame`](ServeClient::recv_frame) match-up.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on write failure.
    pub fn send_infer(&mut self, tag: u8, image: &[f32]) -> Result<u64, ServeError> {
        let id = self.next_id();
        self.send(&Frame::infer(id, tag, image))?;
        Ok(id)
    }

    /// Pipelined shutdown: send without waiting for the ack.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on write failure.
    pub fn send_shutdown(&mut self) -> Result<u64, ServeError> {
        let id = self.next_id();
        self.send(&Frame::shutdown(id))?;
        Ok(id)
    }
}
