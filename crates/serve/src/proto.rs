//! The `QSRV` wire format: length-prefixed binary frames with a CRC32
//! trailer.
//!
//! Every frame is laid out as (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "QSRV"
//!      4     2  version      1
//!      6     1  kind         Infer | InferOk | Error | Shutdown | ShutdownAck
//!                            | Ping | Pong | Reload | ReloadOk
//!      7     1  tag          precision tag (Infer) / error code (Error)
//!                            / model version mod 256 (InferOk) / 0
//!      8     8  req_id       echoed verbatim in the response
//!     16     4  payload_len  bytes to follow, ≤ MAX_PAYLOAD
//!     20     n  payload      f32 LE image (Infer) / f32 LE logits (InferOk)
//!                            / retry_after_us:u32 + utf-8 detail (Error)
//!   20+n     4  crc32        qnn_faults::crc32 over bytes [0, 20+n)
//! ```
//!
//! Decoding is total: every malformed input — truncation at any prefix
//! length, wrong magic/version/kind, an oversized length, a corrupted
//! CRC — maps to a typed [`ProtoError`], never a panic. The property
//! tests in `tests/proto_props.rs` drive ≥256 seeded mutations through
//! [`read_frame`] to hold that line.

use std::fmt;
use std::io::Read;

use qnn_faults::crc32;

/// Frame magic: `"QSRV"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"QSRV");

/// Highest protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes (everything before the payload).
pub const HEADER_LEN: usize = 20;

/// Hard cap on `payload_len`: a frame larger than this is rejected
/// before any payload allocation happens.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Smallest retry hint a server or router ever sends (1 ms). A shorter
/// hint just makes clients spin against a condition that cannot clear
/// that fast.
pub const RETRY_HINT_MIN_US: u64 = 1_000;

/// Largest retry hint ever sent (1 s) — even a deeply backed-up queue or
/// a full membership round-trip clears within this.
pub const RETRY_HINT_MAX_US: u64 = 1_000_000;

/// Clamps a retry-hint estimate into the protocol-wide 1ms..1s band.
///
/// This is the single clamp shared by the engine's adaptive Busy EWMA
/// hint and the router's ShardDown hint — previously duplicated (with
/// drifting bounds) in both places.
pub fn clamp_retry_hint_us(estimate_us: u64) -> u32 {
    estimate_us.clamp(RETRY_HINT_MIN_US, RETRY_HINT_MAX_US) as u32
}

/// What a frame is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: run inference on the payload image.
    Infer = 1,
    /// Server → client: the logits for a request.
    InferOk = 2,
    /// Server → client: a typed rejection (code in `tag`).
    Error = 3,
    /// Client → server: drain in-flight work and stop.
    Shutdown = 4,
    /// Server → client: the drain finished; the server is exiting.
    ShutdownAck = 5,
    /// Peer → server: liveness probe. Answered directly by the
    /// connection handler — a heartbeat measures "is the process alive
    /// and reading its sockets", so it never enters the batching queue.
    Ping = 6,
    /// Server → peer: the answer to a [`FrameKind::Ping`], echoing its
    /// request id.
    Pong = 7,
    /// Client → server: hot-reload the model bank from the QNNF
    /// checkpoint whose filesystem path rides in the payload. Handled on
    /// the connection thread (never the engine thread); the canary gate
    /// and swap happen before the [`FrameKind::ReloadOk`] is sent.
    Reload = 8,
    /// Server → client: the reload was canary-approved and promoted.
    /// Payload carries the new version (`u32`) and its bank seed
    /// (`u64`), both little-endian.
    ReloadOk = 9,
}

impl FrameKind {
    /// Parses the `kind` header byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Infer,
            2 => FrameKind::InferOk,
            3 => FrameKind::Error,
            4 => FrameKind::Shutdown,
            5 => FrameKind::ShutdownAck,
            6 => FrameKind::Ping,
            7 => FrameKind::Pong,
            8 => FrameKind::Reload,
            9 => FrameKind::ReloadOk,
            _ => return None,
        })
    }
}

/// Machine-readable reason carried in an [`FrameKind::Error`] frame's
/// `tag` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The stream did not start with the `QSRV` magic.
    BadMagic = 1,
    /// The version field is newer than this build speaks.
    BadVersion = 2,
    /// The kind byte is not a known frame kind.
    BadKind = 3,
    /// The CRC32 trailer did not match the frame bytes.
    BadCrc = 4,
    /// `payload_len` exceeds [`MAX_PAYLOAD`].
    Oversized = 5,
    /// The precision tag does not name a Table III row.
    BadPrecision = 6,
    /// The payload is not a whole number of floats, or its length does
    /// not match the served model's input.
    BadPayload = 7,
    /// The batching queue is full — backpressure. Retry after the hint.
    Busy = 8,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown = 9,
    /// The forward pass itself failed (should not happen after payload
    /// validation; reported rather than panicking the engine).
    Internal = 10,
    /// The stream ended mid-frame. The server answers on the write half
    /// (still open under a half-close) before hanging up.
    Truncated = 11,
    /// A router could not reach any live replica for the request's hash
    /// ring candidates. Retryable: membership converges within
    /// `k_misses` heartbeats, so retry after the hinted delay.
    ShardDown = 12,
    /// A hot-reload request was refused — corrupt/mismatched checkpoint,
    /// canary divergence, or another reload already in flight. The
    /// previous model version keeps serving bit-identically; the message
    /// carries the typed reason. Not retryable: the same checkpoint will
    /// fail the same way.
    ReloadRejected = 13,
}

impl ErrorCode {
    /// Parses the `tag` byte of an error frame.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::BadKind,
            4 => ErrorCode::BadCrc,
            5 => ErrorCode::Oversized,
            6 => ErrorCode::BadPrecision,
            7 => ErrorCode::BadPayload,
            8 => ErrorCode::Busy,
            9 => ErrorCode::ShuttingDown,
            10 => ErrorCode::Internal,
            11 => ErrorCode::Truncated,
            12 => ErrorCode::ShardDown,
            13 => ErrorCode::ReloadRejected,
            _ => return None,
        })
    }

    /// True for rejections a well-behaved client should retry after the
    /// frame's `retry_after_us` hint: [`ErrorCode::Busy`] (backpressure)
    /// and [`ErrorCode::ShardDown`] (failover in progress). Everything
    /// else reports a malformed or unserviceable request and retrying
    /// verbatim would only repeat the rejection.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Busy | ErrorCode::ShardDown)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Every way a byte stream can fail to be a `QSRV` frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Clean end of stream before the first header byte — not an error
    /// on a connection, just "the peer is done".
    Eof,
    /// The stream ended (or an I/O error cut it) inside a frame.
    Truncated {
        /// Bytes of the frame that did arrive.
        got: usize,
    },
    /// The first four bytes are not `"QSRV"`.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// The version field is not one this build speaks.
    BadVersion {
        /// The value found.
        found: u16,
    },
    /// The kind byte is unknown.
    BadKind {
        /// The value found.
        found: u8,
    },
    /// `payload_len` exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        declared: u32,
    },
    /// The CRC32 trailer does not match the received bytes.
    BadCrc {
        /// Checksum in the trailer.
        stored: u32,
        /// Checksum recomputed over the frame.
        computed: u32,
    },
    /// The payload did not decode as its kind demands (e.g. not a whole
    /// number of floats).
    BadPayload {
        /// What was wrong.
        reason: String,
    },
    /// An OS-level read/write failure, flattened to keep this `Clone`.
    Io {
        /// `io::Error` display text.
        msg: String,
    },
}

impl ProtoError {
    /// The error frame a server should answer with, if the connection is
    /// still usable enough to answer at all. [`ProtoError::Eof`] (a clean
    /// close, nothing to reject) and [`ProtoError::Io`] (the transport
    /// itself failed) are not answerable; truncation *is* — the peer may
    /// have only half-closed, leaving the server's write half open for a
    /// parting [`ErrorCode::Truncated`] frame.
    pub fn as_error_code(&self) -> Option<ErrorCode> {
        Some(match self {
            ProtoError::Eof | ProtoError::Io { .. } => return None,
            ProtoError::Truncated { .. } => ErrorCode::Truncated,
            ProtoError::BadMagic { .. } => ErrorCode::BadMagic,
            ProtoError::BadVersion { .. } => ErrorCode::BadVersion,
            ProtoError::BadKind { .. } => ErrorCode::BadKind,
            ProtoError::Oversized { .. } => ErrorCode::Oversized,
            ProtoError::BadCrc { .. } => ErrorCode::BadCrc,
            ProtoError::BadPayload { .. } => ErrorCode::BadPayload,
        })
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Eof => write!(f, "end of stream"),
            ProtoError::Truncated { got } => write!(f, "frame truncated after {got} bytes"),
            ProtoError::BadMagic { found } => write!(f, "bad magic {found:#010x}"),
            ProtoError::BadVersion { found } => write!(f, "unsupported version {found}"),
            ProtoError::BadKind { found } => write!(f, "unknown frame kind {found}"),
            ProtoError::Oversized { declared } => {
                write!(f, "payload {declared} bytes exceeds cap {MAX_PAYLOAD}")
            }
            ProtoError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            ProtoError::BadPayload { reason } => write!(f, "bad payload: {reason}"),
            ProtoError::Io { msg } => write!(f, "i/o: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Precision tag (Infer) or error code (Error); 0 otherwise.
    pub tag: u8,
    /// Request id, echoed verbatim in responses.
    pub req_id: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

impl Frame {
    /// An inference request for `image` under precision `tag`.
    pub fn infer(req_id: u64, tag: u8, image: &[f32]) -> Frame {
        Frame {
            kind: FrameKind::Infer,
            tag,
            req_id,
            payload: f32s_to_bytes(image),
        }
    }

    /// The logits response to request `req_id`.
    pub fn infer_ok(req_id: u64, logits: &[f32]) -> Frame {
        Frame::infer_ok_v(req_id, 0, logits)
    }

    /// The logits response to request `req_id`, stamped with the model
    /// version (mod 256) that computed it in the `tag` byte — how a
    /// client knows which bank answered during a hot-reload window.
    pub fn infer_ok_v(req_id: u64, version: u8, logits: &[f32]) -> Frame {
        Frame {
            kind: FrameKind::InferOk,
            tag: version,
            req_id,
            payload: f32s_to_bytes(logits),
        }
    }

    /// A hot-reload request naming the QNNF checkpoint to load. The path
    /// is resolved on the *server's* filesystem — weights never ride the
    /// wire.
    pub fn reload(req_id: u64, checkpoint_path: &str) -> Frame {
        Frame {
            kind: FrameKind::Reload,
            tag: 0,
            req_id,
            payload: checkpoint_path.as_bytes().to_vec(),
        }
    }

    /// The promotion acknowledgement for a [`Frame::reload`]: the new
    /// live version and the bank seed it was built from.
    pub fn reload_ok(req_id: u64, version: u32, seed: u64) -> Frame {
        let mut payload = version.to_le_bytes().to_vec();
        payload.extend_from_slice(&seed.to_le_bytes());
        Frame {
            kind: FrameKind::ReloadOk,
            tag: 0,
            req_id,
            payload,
        }
    }

    /// Decodes a [`FrameKind::Reload`] payload into the checkpoint path.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] on the wrong kind or non-UTF-8 bytes.
    pub fn reload_path(&self) -> Result<String, ProtoError> {
        if self.kind != FrameKind::Reload {
            return Err(ProtoError::BadPayload {
                reason: format!("{:?} is not a reload frame", self.kind),
            });
        }
        String::from_utf8(self.payload.clone()).map_err(|_| ProtoError::BadPayload {
            reason: "checkpoint path is not UTF-8".to_string(),
        })
    }

    /// Decodes a [`FrameKind::ReloadOk`] payload into
    /// `(version, bank_seed)`.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] on the wrong kind or a short payload.
    pub fn reload_ok_info(&self) -> Result<(u32, u64), ProtoError> {
        if self.kind != FrameKind::ReloadOk || self.payload.len() < 12 {
            return Err(ProtoError::BadPayload {
                reason: format!(
                    "{:?} with {} payload bytes is not a reload ack",
                    self.kind,
                    self.payload.len()
                ),
            });
        }
        let version = u32::from_le_bytes(self.payload[0..4].try_into().unwrap());
        let seed = u64::from_le_bytes(self.payload[4..12].try_into().unwrap());
        Ok((version, seed))
    }

    /// A typed rejection of request `req_id`.
    pub fn error(req_id: u64, code: ErrorCode, retry_after_us: u32, msg: &str) -> Frame {
        let mut payload = retry_after_us.to_le_bytes().to_vec();
        payload.extend_from_slice(msg.as_bytes());
        Frame {
            kind: FrameKind::Error,
            tag: code as u8,
            req_id,
            payload,
        }
    }

    /// A graceful-shutdown request.
    pub fn shutdown(req_id: u64) -> Frame {
        Frame {
            kind: FrameKind::Shutdown,
            tag: 0,
            req_id,
            payload: Vec::new(),
        }
    }

    /// The drain-complete acknowledgement of a shutdown request.
    pub fn shutdown_ack(req_id: u64) -> Frame {
        Frame {
            kind: FrameKind::ShutdownAck,
            tag: 0,
            req_id,
            payload: Vec::new(),
        }
    }

    /// A liveness probe. The peer answers with a [`Frame::pong`] echoing
    /// `req_id`.
    pub fn ping(req_id: u64) -> Frame {
        Frame {
            kind: FrameKind::Ping,
            tag: 0,
            req_id,
            payload: Vec::new(),
        }
    }

    /// The answer to a [`Frame::ping`].
    pub fn pong(req_id: u64) -> Frame {
        Frame {
            kind: FrameKind::Pong,
            tag: 0,
            req_id,
            payload: Vec::new(),
        }
    }

    /// Interprets the payload as little-endian `f32`s.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] when the length is not a multiple of 4.
    pub fn payload_f32s(&self) -> Result<Vec<f32>, ProtoError> {
        let mut out = Vec::new();
        decode_f32s_into(&self.payload, &mut out)?;
        Ok(out)
    }

    /// Decodes an [`FrameKind::Error`] payload into
    /// `(code, retry_after_us, message)`.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] when the frame is not an error frame,
    /// the code byte is unknown, or the payload is too short.
    pub fn error_info(&self) -> Result<(ErrorCode, u32, String), ProtoError> {
        if self.kind != FrameKind::Error {
            return Err(ProtoError::BadPayload {
                reason: format!("{:?} is not an error frame", self.kind),
            });
        }
        let code = ErrorCode::from_u8(self.tag).ok_or_else(|| ProtoError::BadPayload {
            reason: format!("unknown error code {}", self.tag),
        })?;
        if self.payload.len() < 4 {
            return Err(ProtoError::BadPayload {
                reason: "error payload shorter than its retry hint".to_string(),
            });
        }
        let retry = u32::from_le_bytes([
            self.payload[0],
            self.payload[1],
            self.payload[2],
            self.payload[3],
        ]);
        let msg = String::from_utf8_lossy(&self.payload[4..]).into_owned();
        Ok((code, retry, msg))
    }

    /// Serializes the frame: header, payload, CRC32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 4);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind as u8);
        out.push(self.tag);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// A validated header: what [`parse_header`] hands back before the
/// payload is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame kind.
    pub kind: FrameKind,
    /// Tag byte (precision or error code).
    pub tag: u8,
    /// Request id.
    pub req_id: u64,
    /// Declared payload length (already checked against [`MAX_PAYLOAD`]).
    pub payload_len: u32,
}

/// Validates a fixed-size header block: magic, version, kind, and the
/// payload-length cap. The cap check runs *before* any payload
/// allocation, so a hostile length cannot balloon memory.
///
/// # Errors
///
/// The corresponding [`ProtoError`] for each malformed field, checked in
/// wire order.
pub fn parse_header(h: &[u8; HEADER_LEN]) -> Result<Header, ProtoError> {
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != VERSION {
        return Err(ProtoError::BadVersion { found: version });
    }
    let kind = FrameKind::from_u8(h[6]).ok_or(ProtoError::BadKind { found: h[6] })?;
    let tag = h[7];
    let req_id = u64::from_le_bytes([h[8], h[9], h[10], h[11], h[12], h[13], h[14], h[15]]);
    let payload_len = u32::from_le_bytes([h[16], h[17], h[18], h[19]]);
    if payload_len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            declared: payload_len,
        });
    }
    Ok(Header {
        kind,
        tag,
        req_id,
        payload_len,
    })
}

/// Decodes a little-endian `f32` byte payload into a caller-owned buffer
/// (cleared first) — the allocation-free form of
/// [`Frame::payload_f32s`], used by the server to decode straight into a
/// recycled arena slab.
///
/// # Errors
///
/// [`ProtoError::BadPayload`] when the length is not a multiple of 4.
pub fn decode_f32s_into(bytes: &[u8], out: &mut Vec<f32>) -> Result<(), ProtoError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(ProtoError::BadPayload {
            reason: format!("{} bytes is not a whole number of f32s", bytes.len()),
        });
    }
    out.clear();
    out.extend(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
    Ok(())
}

/// Verifies the CRC32 trailer against the received header + payload.
///
/// # Errors
///
/// [`ProtoError::BadCrc`] on mismatch.
pub fn verify_crc(
    header_bytes: &[u8; HEADER_LEN],
    payload: &[u8],
    stored_crc: u32,
) -> Result<(), ProtoError> {
    let mut h = crc32::Crc32::new();
    h.update(header_bytes);
    h.update(payload);
    let computed = h.finish();
    if computed != stored_crc {
        return Err(ProtoError::BadCrc {
            stored: stored_crc,
            computed,
        });
    }
    Ok(())
}

/// Verifies the CRC32 trailer (see [`verify_crc`]) and assembles the
/// [`Frame`].
///
/// # Errors
///
/// [`ProtoError::BadCrc`] on mismatch.
pub fn finish_frame(
    header_bytes: &[u8; HEADER_LEN],
    header: Header,
    payload: Vec<u8>,
    stored_crc: u32,
) -> Result<Frame, ProtoError> {
    verify_crc(header_bytes, &payload, stored_crc)?;
    Ok(Frame {
        kind: header.kind,
        tag: header.tag,
        req_id: header.req_id,
        payload,
    })
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF to
/// [`ProtoError::Eof`] when nothing of the frame had arrived yet
/// (`got == 0`) and to [`ProtoError::Truncated`] otherwise.
fn read_exact_at(r: &mut impl Read, buf: &mut [u8], got_so_far: usize) -> Result<(), ProtoError> {
    let mut off = 0;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return if got_so_far + off == 0 {
                    Err(ProtoError::Eof)
                } else {
                    Err(ProtoError::Truncated {
                        got: got_so_far + off,
                    })
                };
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io { msg: e.to_string() }),
        }
    }
    Ok(())
}

/// Reads and validates one frame from a blocking reader.
///
/// Total: every malformed stream yields a typed [`ProtoError`]; only a
/// clean close exactly on a frame boundary is [`ProtoError::Eof`].
///
/// # Errors
///
/// See [`ProtoError`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    read_exact_at(r, &mut header_bytes, 0)?;
    let header = parse_header(&header_bytes)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    read_exact_at(r, &mut payload, HEADER_LEN)?;
    let mut crc = [0u8; 4];
    read_exact_at(r, &mut crc, HEADER_LEN + payload.len())?;
    finish_frame(&header_bytes, header, payload, u32::from_le_bytes(crc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_every_kind() {
        let frames = [
            Frame::infer(7, 3, &[1.0, -0.5, 0.25]),
            Frame::infer_ok(7, &[0.1, 0.9]),
            Frame::error(9, ErrorCode::Busy, 1500, "queue full"),
            Frame::shutdown(11),
            Frame::shutdown_ack(11),
            Frame::ping(13),
            Frame::pong(13),
            Frame::error(15, ErrorCode::ShardDown, 9000, "no live replica"),
            Frame::infer_ok_v(17, 42, &[0.3, 0.7]),
            Frame::reload(19, "/tmp/model.qnnf"),
            Frame::reload_ok(19, 3, 0x51AB),
            Frame::error(21, ErrorCode::ReloadRejected, 0, "canary diverged"),
        ];
        for f in frames {
            let bytes = f.encode();
            let back = read_frame(&mut Cursor::new(&bytes)).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn payload_codecs_round_trip() {
        let f = Frame::infer(1, 2, &[3.5, -0.0, f32::MIN_POSITIVE]);
        assert_eq!(
            f.payload_f32s().unwrap(),
            vec![3.5, -0.0, f32::MIN_POSITIVE]
        );
        let e = Frame::error(2, ErrorCode::ShuttingDown, 0, "bye");
        assert_eq!(
            e.error_info().unwrap(),
            (ErrorCode::ShuttingDown, 0, "bye".to_string())
        );
    }

    #[test]
    fn empty_stream_is_eof_not_truncated() {
        assert_eq!(read_frame(&mut Cursor::new(&[][..])), Err(ProtoError::Eof));
    }

    #[test]
    fn each_header_field_is_checked_in_order() {
        let good = Frame::shutdown(1).encode();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_magic)),
            Err(ProtoError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_version)),
            Err(ProtoError::BadVersion { found: 99 })
        ));

        let mut bad_kind = good.clone();
        bad_kind[6] = 42;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_kind)),
            Err(ProtoError::BadKind { found: 42 })
        ));

        let mut oversized = good;
        oversized[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&oversized)),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut bytes = Frame::infer(1, 0, &[1.0, 2.0]).encode();
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(ProtoError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_reports_received_byte_count() {
        let bytes = Frame::infer(1, 0, &[1.0]).encode();
        let cut = bytes.len() - 3;
        match read_frame(&mut Cursor::new(&bytes[..cut])) {
            Err(ProtoError::Truncated { got }) => assert_eq!(got, cut),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn only_backpressure_and_failover_are_retryable() {
        for code in 1..=13u8 {
            let code = ErrorCode::from_u8(code).unwrap();
            assert_eq!(
                code.is_retryable(),
                matches!(code, ErrorCode::Busy | ErrorCode::ShardDown),
                "{code:?}"
            );
        }
        assert_eq!(ErrorCode::from_u8(14), None);
    }

    #[test]
    fn reload_payload_codecs_round_trip() {
        let r = Frame::reload(5, "/ckpt/bank.qnnf");
        assert_eq!(r.reload_path().unwrap(), "/ckpt/bank.qnnf");
        let ack = Frame::reload_ok(5, 7, 0xDEAD_BEEF);
        assert_eq!(ack.reload_ok_info().unwrap(), (7, 0xDEAD_BEEF));
        // Kind confusion is a typed error, not a bogus decode.
        assert!(ack.reload_path().is_err());
        assert!(r.reload_ok_info().is_err());
    }

    #[test]
    fn retry_hint_clamp_is_one_ms_to_one_s() {
        assert_eq!(clamp_retry_hint_us(0), RETRY_HINT_MIN_US as u32);
        assert_eq!(clamp_retry_hint_us(999), 1_000);
        assert_eq!(clamp_retry_hint_us(250_000), 250_000);
        assert_eq!(clamp_retry_hint_us(u64::MAX), RETRY_HINT_MAX_US as u32);
    }

    #[test]
    fn unanswerable_errors_have_no_code() {
        assert_eq!(ProtoError::Eof.as_error_code(), None);
        assert_eq!(
            ProtoError::Io {
                msg: "reset".to_string()
            }
            .as_error_code(),
            None
        );
        assert_eq!(
            ProtoError::Truncated { got: 3 }.as_error_code(),
            Some(ErrorCode::Truncated)
        );
        assert_eq!(
            ProtoError::BadCrc {
                stored: 1,
                computed: 2
            }
            .as_error_code(),
            Some(ErrorCode::BadCrc)
        );
    }
}
