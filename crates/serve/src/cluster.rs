//! The cluster router: one `QSRV` endpoint in front of N shard workers.
//!
//! A [`Router`] accepts ordinary `QSRV` connections on the edge and
//! speaks the same protocol shard-side, so a shard is just a stock
//! `qnn-serve` [`crate::Server`] — every shard builds the identical
//! [`crate::ModelBank`] from the shared seed, which is what makes
//! failover invisible: any replica answers any request with the same
//! bits.
//!
//! ## Routing
//!
//! Each request hashes by `(req_id, precision)` onto a consistent-hash
//! ring ([`HashRing`]) of virtual nodes, mixed with
//! [`qnn_tensor::rng::derive_seed`] — the same SplitMix64 finalizer the
//! sweeps seed streams with, so placement is deterministic, uniform,
//! and stable: removing one shard only moves the keys that lived on it.
//! The ring-walk order doubles as the failover order:
//! [`HashRing::candidates`] lists every shard, primary first, and the
//! router tries them in sequence, skipping shards its
//! [`Membership`](crate::membership::Membership) table says are down.
//!
//! ## Liveness and failover
//!
//! One heartbeat thread per shard sends a `Ping` every interval and
//! feeds the membership table; `k_misses` unanswered beats mark a shard
//! down, a single `Pong` revives it. A forward that finds a dead
//! connection mid-request marks the shard down immediately and fails
//! over to the next ring candidate — the client sees a bit-identical
//! answer from a replica, or, when no candidate is live, a typed
//! retryable [`ErrorCode::ShardDown`] frame with a retry hint sized to
//! the membership convergence time. Never a hang: every shard-side read
//! is bounded by `forward_timeout`.
//!
//! ## Shutdown
//!
//! A client `Shutdown` frame drains the whole cluster: the router
//! propagates it to every live shard, waits for their post-drain acks,
//! acks the client, and stops. [`Router::shutdown`] is the programmatic
//! variant that stops routing *without* touching the shards (tests use
//! it to tear the edge down while shards keep running).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qnn_tensor::rng::derive_seed;
use qnn_trace::Histogram;

use crate::membership::{Membership, ShardId, Transition};
use crate::proto::{
    clamp_retry_hint_us, read_frame, ErrorCode, Frame, FrameKind, ProtoError, HEADER_LEN,
};
use crate::server::{fill, ReadEvent};
use crate::ServeError;

/// Seed domain for ring point placement, fed through `derive_seed` so
/// ring layout is a pure function of `(shard, vnode)`.
const RING_SEED: u64 = u64::from_le_bytes(*b"qnn-ring");

/// Stray frames a forward will skip (stale pongs, late responses from
/// an abandoned exchange) before treating the connection as confused.
const FORWARD_STRAY_BUDGET: usize = 32;

/// A consistent-hash ring of virtual nodes over `shards` shards.
///
/// Placement is uniform (each shard owns `vnodes` points whose
/// positions are `derive_seed` outputs — effectively uniform on `u64`)
/// and consistent: a shard's points are a function of its index alone,
/// so adding or removing a shard never moves keys between the others.
pub struct HashRing {
    /// `(position, shard)` sorted by position.
    points: Vec<(u64, ShardId)>,
    shards: usize,
}

impl HashRing {
    /// A ring of `shards · vnodes` points (`vnodes` clamped to ≥ 1).
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            let shard_seed = derive_seed(RING_SEED, s as u64);
            for v in 0..vnodes {
                points.push((derive_seed(shard_seed, v as u64), s));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring spans.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing key for a request: `(req_id, precision)` mixed
    /// through the same SplitMix64 finalizer as every other seed stream
    /// in the workspace.
    pub fn key(req_id: u64, tag: u8) -> u64 {
        derive_seed(req_id, u64::from(tag))
    }

    /// Every shard in ring-walk order from `key`: the primary first,
    /// then each successive distinct shard — the failover order. Empty
    /// only for a zero-shard ring.
    pub fn candidates(&self, key: u64) -> Vec<ShardId> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.points.partition_point(|&(pos, _)| pos < key) % self.points.len();
        let mut seen = vec![false; self.shards];
        let mut out = Vec::with_capacity(self.shards);
        for i in 0..self.points.len() {
            let (_, s) = self.points[(start + i) % self.points.len()];
            if !seen[s] {
                seen[s] = true;
                out.push(s);
                if out.len() == self.shards {
                    break;
                }
            }
        }
        out
    }
}

/// Tuning knobs for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Edge bind address; port 0 picks a free port (report it via
    /// [`Router::local_addr`]).
    pub addr: String,
    /// Shard addresses, in the index order membership and the ring use.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Heartbeat interval per shard.
    pub heartbeat: Duration,
    /// Consecutive missed beats before a shard is marked down.
    pub k_misses: u32,
    /// Read deadline for one Ping/Pong exchange.
    pub probe_timeout: Duration,
    /// Read deadline for one forwarded request (bounds every shard-side
    /// wait — the "never a hang" half of the failover contract).
    pub forward_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: 64,
            heartbeat: Duration::from_millis(100),
            k_misses: 3,
            probe_timeout: Duration::from_millis(500),
            forward_timeout: Duration::from_secs(10),
        }
    }
}

/// What a finished router run did, returned by [`Router::join`].
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Requests answered with relayed logits.
    pub requests: u64,
    /// Typed shard error frames relayed verbatim (Busy, BadPrecision…).
    pub relayed_errors: u64,
    /// Forward attempts abandoned on a dead connection (each one moved
    /// the request to the next ring candidate).
    pub failovers: u64,
    /// Requests rejected `ShardDown` because no candidate answered.
    pub shard_down: u64,
    /// Rolling reloads fully propagated (every live shard promoted).
    pub reloads: u64,
    /// Edge connections accepted.
    pub connections: u64,
    /// Shards that went down (membership transitions, not shards).
    pub went_down: u64,
    /// Shards that came back up.
    pub came_up: u64,
    /// Per-forward shard round-trip, microseconds (successful forwards).
    pub forward_us: Histogram,
}

impl RouterStats {
    /// A human-readable run summary (printed by `qnn router` at exit).
    pub fn render(&self) -> String {
        format!(
            "routed {} request(s) over {} connection(s); \
             {} failover(s), {} shard-down rejection(s), {} shard error(s) relayed; \
             {} rolling reload(s)\n\
             membership: {} down transition(s), {} up transition(s)\n\
             forward us  mean {:.0}  p50 {:.0}  p99 {:.0}  max {:.0}\n",
            self.requests,
            self.connections,
            self.failovers,
            self.shard_down,
            self.relayed_errors,
            self.reloads,
            self.went_down,
            self.came_up,
            self.forward_us.mean(),
            self.forward_us.quantile(0.5),
            self.forward_us.quantile(0.99),
            if self.forward_us.count == 0 {
                0.0
            } else {
                self.forward_us.max
            },
        )
    }
}

/// Shared router control state.
struct RCtl {
    shards: Vec<String>,
    ring: HashRing,
    membership: Mutex<Membership>,
    stop: AtomicBool,
    forward_timeout: Duration,
    /// Retry hint handed out with `ShardDown`: the membership
    /// convergence budget (heartbeat · k_misses), microseconds.
    shard_down_hint_us: u32,
    requests: AtomicU64,
    relayed_errors: AtomicU64,
    failovers: AtomicU64,
    shard_down: AtomicU64,
    reloads: AtomicU64,
    connections: AtomicU64,
    went_down: AtomicU64,
    came_up: AtomicU64,
    forward_us: Mutex<Histogram>,
}

impl RCtl {
    /// Folds a membership transition into stats and telemetry.
    fn apply_transition(&self, t: Option<Transition>) {
        let Some(t) = t else { return };
        match t {
            Transition::CameUp(s) => {
                self.came_up.fetch_add(1, Ordering::Relaxed);
                qnn_trace::counter!("router.shard.up", 1);
                qnn_trace::gauge!(format!("router.shard{s}.up"), 1.0);
            }
            Transition::WentDown(s, reason) => {
                self.went_down.fetch_add(1, Ordering::Relaxed);
                qnn_trace::counter!("router.shard.down", 1);
                qnn_trace::counter!(format!("router.shard.down.{reason:?}"), 1);
                qnn_trace::gauge!(format!("router.shard{s}.up"), 0.0);
            }
        }
        let live = self.membership.lock().unwrap().live_count();
        qnn_trace::gauge!("router.shards.live", live as f64);
    }
}

/// A running cluster router; like [`crate::Server`], dropping it does
/// not stop it — have a client send `Shutdown`, or call
/// [`shutdown`](Router::shutdown) + [`join`](Router::join).
pub struct Router {
    addr: SocketAddr,
    ctl: Arc<RCtl>,
    accept: Option<JoinHandle<()>>,
    heartbeats: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds the edge listener and spawns the accept loop plus one
    /// heartbeat thread per shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a bind failure or an empty shard list.
    pub fn start(cfg: RouterConfig) -> Result<Router, ServeError> {
        if cfg.shards.is_empty() {
            return Err(ServeError::Io("router needs at least one shard".into()));
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError::io(&e))?;
        let addr = listener.local_addr().map_err(|e| ServeError::io(&e))?;
        let hint_us = clamp_retry_hint_us(
            (cfg.heartbeat.as_micros() as u64).saturating_mul(u64::from(cfg.k_misses.max(1))),
        );
        let ctl = Arc::new(RCtl {
            ring: HashRing::new(cfg.shards.len(), cfg.vnodes),
            membership: Mutex::new(Membership::new(cfg.shards.len(), cfg.k_misses)),
            shards: cfg.shards.clone(),
            stop: AtomicBool::new(false),
            forward_timeout: cfg.forward_timeout,
            shard_down_hint_us: hint_us,
            requests: AtomicU64::new(0),
            relayed_errors: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            shard_down: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            went_down: AtomicU64::new(0),
            came_up: AtomicU64::new(0),
            forward_us: Mutex::new(Histogram::new()),
        });
        qnn_trace::gauge!("router.shards.live", cfg.shards.len() as f64);

        let mut heartbeats = Vec::with_capacity(cfg.shards.len());
        for shard in 0..cfg.shards.len() {
            let ctl = Arc::clone(&ctl);
            let interval = cfg.heartbeat;
            let probe_timeout = cfg.probe_timeout;
            heartbeats.push(
                std::thread::Builder::new()
                    .name(format!("qnn-router-beat{shard}"))
                    .spawn(move || heartbeat_loop(&ctl, shard, interval, probe_timeout))
                    .map_err(|e| ServeError::io(&e))?,
            );
        }

        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let ctl = Arc::clone(&ctl);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("qnn-router-accept".to_string())
                .spawn(move || accept_loop(&listener, addr, &ctl, &handlers))
                .map_err(|e| ServeError::io(&e))?
        };

        Ok(Router {
            addr,
            ctl,
            accept: Some(accept),
            heartbeats,
            handlers,
        })
    }

    /// The actually-bound edge address (resolves a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many shards membership currently counts as live.
    pub fn live_shards(&self) -> usize {
        self.ctl.membership.lock().unwrap().live_count()
    }

    /// Stops routing without touching the shards. Pair with
    /// [`join`](Router::join). (A client `Shutdown` frame is the whole-
    /// cluster drain; this is just the edge.)
    pub fn shutdown(&self) {
        self.ctl.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
    }

    /// Blocks until the router has stopped (client-driven or via
    /// [`shutdown`](Router::shutdown)) and every thread is reaped;
    /// returns the run's stats.
    pub fn join(mut self) -> RouterStats {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for h in self.heartbeats.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        RouterStats {
            requests: self.ctl.requests.load(Ordering::Relaxed),
            relayed_errors: self.ctl.relayed_errors.load(Ordering::Relaxed),
            failovers: self.ctl.failovers.load(Ordering::Relaxed),
            shard_down: self.ctl.shard_down.load(Ordering::Relaxed),
            reloads: self.ctl.reloads.load(Ordering::Relaxed),
            connections: self.ctl.connections.load(Ordering::Relaxed),
            went_down: self.ctl.went_down.load(Ordering::Relaxed),
            came_up: self.ctl.came_up.load(Ordering::Relaxed),
            forward_us: self.ctl.forward_us.lock().unwrap().clone(),
        }
    }
}

/// One shard's heartbeat: probe, feed membership, keep a persistent
/// probe connection (re-dialed after any failure).
fn heartbeat_loop(ctl: &Arc<RCtl>, shard: ShardId, interval: Duration, probe_timeout: Duration) {
    let mut conn: Option<TcpStream> = None;
    let mut seq: u64 = 1;
    while !ctl.stop.load(Ordering::SeqCst) {
        if conn.is_none() {
            conn = TcpStream::connect(&ctl.shards[shard]).ok().and_then(|c| {
                c.set_read_timeout(Some(probe_timeout)).ok()?;
                let _ = c.set_nodelay(true);
                Some(c)
            });
        }
        let ok = match conn.as_mut() {
            Some(c) => crate::membership::ping_shard(c, seq).is_ok(),
            None => false,
        };
        if !ok {
            conn = None;
        }
        seq += 1;
        let transition = {
            let mut m = ctl.membership.lock().unwrap();
            if ok {
                m.on_pong(shard)
            } else {
                m.on_miss(shard)
            }
        }
        .unwrap_or(None);
        ctl.apply_transition(transition);
        std::thread::sleep(interval);
    }
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    ctl: &Arc<RCtl>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if ctl.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if ctl.stop.load(Ordering::SeqCst) {
            return; // the wake-up self-connect, or a straggler
        }
        ctl.connections.fetch_add(1, Ordering::Relaxed);
        qnn_trace::counter!("router.connections", 1);
        let ctl = Arc::clone(ctl);
        if let Ok(h) = std::thread::Builder::new()
            .name("qnn-router-conn".to_string())
            .spawn(move || handle_connection(stream, addr, &ctl))
        {
            handlers.lock().unwrap().push(h);
        }
    }
}

/// Reads one whole owned frame through the 50 ms stop-flag poll —
/// the router relays payloads opaquely, so unlike the shard server
/// there is no arena decode path here.
fn read_frame_stoppable(
    stream: &mut impl std::io::Read,
    stop: &AtomicBool,
    payload_buf: &mut Vec<u8>,
) -> ReadEvent {
    let mut header_bytes = [0u8; HEADER_LEN];
    if let Err(ev) = fill(stream, &mut header_bytes, 0, stop) {
        return ev;
    }
    let magic_ok = header_bytes[..4] == crate::proto::MAGIC.to_le_bytes();
    let req_id = if magic_ok {
        u64::from_le_bytes(header_bytes[8..16].try_into().unwrap())
    } else {
        0
    };
    let header = match crate::proto::parse_header(&header_bytes) {
        Ok(h) => h,
        Err(err) => return ReadEvent::Bad { err, req_id },
    };
    let stamp = |ev: ReadEvent| match ev {
        ReadEvent::Eof => ReadEvent::Bad {
            err: ProtoError::Truncated { got: HEADER_LEN },
            req_id,
        },
        ReadEvent::Bad { err, .. } => ReadEvent::Bad { err, req_id },
        other => other,
    };
    payload_buf.clear();
    payload_buf.resize(header.payload_len as usize, 0);
    if let Err(ev) = fill(stream, payload_buf, HEADER_LEN, stop) {
        return stamp(ev);
    }
    let mut crc = [0u8; 4];
    if let Err(ev) = fill(stream, &mut crc, HEADER_LEN + payload_buf.len(), stop) {
        return stamp(ev);
    }
    if let Err(err) = crate::proto::verify_crc(&header_bytes, payload_buf, u32::from_le_bytes(crc))
    {
        return ReadEvent::Bad { err, req_id };
    }
    ReadEvent::Frame(Frame {
        kind: header.kind,
        tag: header.tag,
        req_id: header.req_id,
        payload: std::mem::take(payload_buf),
    })
}

/// One edge connection: synchronous request → route → relay. A single
/// thread owns both halves, so responses never interleave mid-write.
fn handle_connection(stream: TcpStream, router_addr: SocketAddr, ctl: &Arc<RCtl>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    let mut payload_buf: Vec<u8> = Vec::new();
    // Lazy per-shard forward connections owned by this handler — no
    // multiplexing, so a response always belongs to the request this
    // handler just wrote.
    let mut conns: Vec<Option<TcpStream>> = (0..ctl.shards.len()).map(|_| None).collect();

    let send = |w: &mut TcpStream, frame: &Frame| -> bool {
        w.write_all(&frame.encode())
            .and_then(|()| w.flush())
            .is_ok()
    };

    loop {
        // Same between-frames stop check as the shard server: a chatty
        // peer keeps the in-read poll from ever seeing the flag.
        if ctl.stop.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_stoppable(&mut reader, &ctl.stop, &mut payload_buf) {
            ReadEvent::Eof | ReadEvent::Stopped => break,
            ReadEvent::Infer { .. } => unreachable!("router reader yields owned frames"),
            ReadEvent::Bad { err, req_id } => {
                qnn_trace::counter!("router.rx.bad_frames", 1);
                if let Some(code) = err.as_error_code() {
                    let _ = send(
                        &mut write_half,
                        &Frame::error(req_id, code, 0, &err.to_string()),
                    );
                }
                // Same fatal/answerable split as the shard server: only
                // a framed-but-undecodable payload leaves the stream
                // usable.
                if !matches!(err, ProtoError::BadPayload { .. }) {
                    break;
                }
            }
            ReadEvent::Frame(frame) => match frame.kind {
                FrameKind::Infer => {
                    let reply = route_and_forward(ctl, &mut conns, &frame);
                    if !send(&mut write_half, &reply) {
                        break;
                    }
                }
                FrameKind::Ping => {
                    if !send(&mut write_half, &Frame::pong(frame.req_id)) {
                        break;
                    }
                }
                FrameKind::Shutdown => {
                    shutdown_cluster(ctl, frame.req_id);
                    let _ = send(&mut write_half, &Frame::shutdown_ack(frame.req_id));
                    ctl.stop.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(router_addr); // wake accept
                    break;
                }
                FrameKind::Reload => {
                    let reply = reload_cluster(ctl, &frame);
                    if !send(&mut write_half, &reply) {
                        break;
                    }
                }
                FrameKind::InferOk
                | FrameKind::Error
                | FrameKind::ShutdownAck
                | FrameKind::Pong
                | FrameKind::ReloadOk => {
                    let _ = send(
                        &mut write_half,
                        &Frame::error(
                            frame.req_id,
                            ErrorCode::BadKind,
                            0,
                            &format!("{:?} is not a request frame", frame.kind),
                        ),
                    );
                }
            },
        }
    }
}

/// Routes one inference request: walk the ring candidates, skip dead
/// shards, forward to the first live one, fail over on transport death.
/// Always returns a reply frame — logits, a relayed shard error, or a
/// retryable `ShardDown`.
fn route_and_forward(ctl: &RCtl, conns: &mut [Option<TcpStream>], frame: &Frame) -> Frame {
    qnn_trace::span!("router.route:{}", frame.tag);
    let key = HashRing::key(frame.req_id, frame.tag);
    for &shard in &ctl.ring.candidates(key) {
        if !ctl.membership.lock().unwrap().is_up(shard) {
            continue;
        }
        match forward_once(ctl, conns, shard, frame) {
            Ok(reply) => {
                // A draining shard refuses work that a replica can still
                // serve: treat its ShuttingDown like a dead connection
                // and fail over (membership is left to the heartbeat —
                // a killed shard stops ponging, a graceful drain keeps
                // answering and simply gets skipped here every time).
                if reply.kind == FrameKind::Error && reply.tag == ErrorCode::ShuttingDown as u8 {
                    ctl.failovers.fetch_add(1, Ordering::Relaxed);
                    qnn_trace::counter!("router.failover", 1);
                    continue;
                }
                if reply.kind == FrameKind::InferOk {
                    ctl.requests.fetch_add(1, Ordering::Relaxed);
                    qnn_trace::counter!("router.requests", 1);
                } else {
                    ctl.relayed_errors.fetch_add(1, Ordering::Relaxed);
                    qnn_trace::counter!("router.relayed.errors", 1);
                }
                return reply;
            }
            Err(()) => {
                // The connection died under the request: mark the shard
                // down now (the heartbeat would take k beats to notice)
                // and fail over to the next ring candidate.
                let t = ctl
                    .membership
                    .lock()
                    .unwrap()
                    .on_transport_failure(shard)
                    .unwrap_or(None);
                ctl.apply_transition(t);
                ctl.failovers.fetch_add(1, Ordering::Relaxed);
                qnn_trace::counter!("router.failover", 1);
            }
        }
    }
    ctl.shard_down.fetch_add(1, Ordering::Relaxed);
    qnn_trace::counter!("router.shard_down", 1);
    Frame::error(
        frame.req_id,
        ErrorCode::ShardDown,
        ctl.shard_down_hint_us,
        "no live replica for this request; retry after the hint",
    )
}

/// One forward attempt over this handler's pooled connection to
/// `shard`. `Err(())` means the transport died (connect/write/read
/// failure, timeout, or a nonsensical reply) — the connection is
/// dropped and the caller fails over.
fn forward_once(
    ctl: &RCtl,
    conns: &mut [Option<TcpStream>],
    shard: ShardId,
    frame: &Frame,
) -> Result<Frame, ()> {
    if conns[shard].is_none() {
        let c = TcpStream::connect(&ctl.shards[shard]).map_err(|_| ())?;
        c.set_read_timeout(Some(ctl.forward_timeout))
            .map_err(|_| ())?;
        let _ = c.set_nodelay(true);
        conns[shard] = Some(c);
    }
    let conn = conns[shard].as_mut().expect("just ensured");
    let start = Instant::now();
    let result = (|| {
        conn.write_all(&frame.encode())
            .and_then(|()| conn.flush())
            .map_err(|_| ())?;
        for _ in 0..FORWARD_STRAY_BUDGET {
            let reply = read_frame(conn).map_err(|_| ())?;
            if reply.req_id != frame.req_id {
                continue; // stale response from an abandoned exchange
            }
            return match reply.kind {
                FrameKind::InferOk | FrameKind::Error => Ok(reply),
                _ => Err(()),
            };
        }
        Err(())
    })();
    match result {
        Ok(reply) => {
            let us = start.elapsed().as_micros() as f64;
            qnn_trace::observe!("router.forward.us", us);
            ctl.forward_us.lock().unwrap().observe(us);
            Ok(reply)
        }
        Err(()) => {
            conns[shard] = None;
            Err(())
        }
    }
}

/// Rolling reload: propagate the client's `Reload` frame to every live
/// shard in index order, waiting for each shard's verdict before
/// touching the next — a shard that refuses (or dies mid-exchange)
/// stops the roll there, so at most a prefix of the cluster moves to
/// the new version and every shard still serves *some* complete
/// version bit-faithfully. The relayed reply is the last shard's
/// `ReloadOk` when the roll completes, else the stopping shard's error
/// annotated with its index.
///
/// The checkpoint path inside the frame is resolved by each shard
/// against its own filesystem — with co-located shards (the CI
/// topology) they all read the same file.
fn reload_cluster(ctl: &RCtl, frame: &Frame) -> Frame {
    qnn_trace::counter!("router.reload", 1);
    let mut last_ok: Option<Frame> = None;
    for shard in 0..ctl.shards.len() {
        if !ctl.membership.lock().unwrap().is_up(shard) {
            continue;
        }
        let reply = match forward_control(ctl, shard, frame, FrameKind::ReloadOk) {
            Some(r) => r,
            None => {
                qnn_trace::counter!("router.reload.stopped", 1);
                return Frame::error(
                    frame.req_id,
                    ErrorCode::ReloadRejected,
                    0,
                    &format!("shard {shard} unreachable mid-roll; roll stopped there"),
                );
            }
        };
        if reply.kind != FrameKind::ReloadOk {
            qnn_trace::counter!("router.reload.stopped", 1);
            let detail = String::from_utf8_lossy(&reply.payload).into_owned();
            return Frame::error(
                frame.req_id,
                ErrorCode::ReloadRejected,
                0,
                &format!("shard {shard} refused: {detail}; roll stopped there"),
            );
        }
        last_ok = Some(reply);
    }
    match last_ok {
        Some(ok) => {
            ctl.reloads.fetch_add(1, Ordering::Relaxed);
            qnn_trace::counter!("router.reload.completed", 1);
            Frame {
                req_id: frame.req_id,
                ..ok
            }
        }
        None => Frame::error(
            frame.req_id,
            ErrorCode::ReloadRejected,
            0,
            "no live shard to reload",
        ),
    }
}

/// One control-frame exchange with `shard` over a fresh connection:
/// write `frame`, read until a frame with the matching request id and
/// either `expect` or `Error` arrives. `None` means the transport died
/// or the shard answered nonsense.
fn forward_control(ctl: &RCtl, shard: ShardId, frame: &Frame, expect: FrameKind) -> Option<Frame> {
    let mut conn = TcpStream::connect(&ctl.shards[shard]).ok()?;
    conn.set_read_timeout(Some(ctl.forward_timeout)).ok()?;
    let _ = conn.set_nodelay(true);
    conn.write_all(&frame.encode())
        .and_then(|()| conn.flush())
        .ok()?;
    for _ in 0..FORWARD_STRAY_BUDGET {
        let reply = read_frame(&mut conn).ok()?;
        if reply.req_id != frame.req_id {
            continue;
        }
        if reply.kind == expect || reply.kind == FrameKind::Error {
            return Some(reply);
        }
        return None;
    }
    None
}

/// Whole-cluster drain: propagate `Shutdown` to every live shard and
/// wait for each post-drain ack (dead shards are skipped; a shard that
/// dies mid-drain is ignored — it has nothing left to drain).
fn shutdown_cluster(ctl: &RCtl, req_id: u64) {
    qnn_trace::counter!("router.shutdown", 1);
    for shard in 0..ctl.shards.len() {
        if !ctl.membership.lock().unwrap().is_up(shard) {
            continue;
        }
        let Ok(conn) = TcpStream::connect(&ctl.shards[shard]) else {
            continue;
        };
        if conn.set_read_timeout(Some(ctl.forward_timeout)).is_err() {
            continue;
        }
        let mut conn = conn;
        if conn
            .write_all(&Frame::shutdown(req_id).encode())
            .and_then(|()| conn.flush())
            .is_err()
        {
            continue;
        }
        for _ in 0..FORWARD_STRAY_BUDGET {
            match read_frame(&mut conn) {
                Ok(f) if f.kind == FrameKind::ShutdownAck && f.req_id == req_id => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_every_shard() {
        let a = HashRing::new(3, 64);
        let b = HashRing::new(3, 64);
        for req_id in 0..64u64 {
            for tag in 0..7u8 {
                let key = HashRing::key(req_id, tag);
                let ca = a.candidates(key);
                assert_eq!(ca, b.candidates(key), "placement must be deterministic");
                let mut sorted = ca.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2], "every shard appears exactly once");
            }
        }
    }

    #[test]
    fn ring_distribution_is_roughly_uniform() {
        let ring = HashRing::new(3, 64);
        let mut counts = [0usize; 3];
        for req_id in 0..3000u64 {
            let key = HashRing::key(req_id, (req_id % 7) as u8);
            counts[ring.candidates(key)[0]] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&c),
                "shard {s} owns {c} of 3000 keys — ring badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        // The consistent-hashing property, phrased as failover: when the
        // primary is skipped, the key lands on its ring-walk successor,
        // and keys whose primary survives do not move at all.
        let ring = HashRing::new(3, 64);
        let dead = 1usize;
        for req_id in 0..512u64 {
            let key = HashRing::key(req_id, 0);
            let cands = ring.candidates(key);
            let with_dead: Vec<ShardId> = cands.iter().copied().filter(|&s| s != dead).collect();
            if cands[0] != dead {
                assert_eq!(with_dead[0], cands[0], "surviving primary must not move");
            } else {
                assert_eq!(with_dead[0], cands[1], "dead primary fails to successor");
            }
        }
    }

    #[test]
    fn zero_vnodes_clamps_to_one() {
        let ring = HashRing::new(2, 0);
        assert_eq!(ring.candidates(42).len(), 2);
    }

    #[test]
    fn empty_ring_has_no_candidates() {
        let ring = HashRing::new(0, 8);
        assert!(ring.candidates(7).is_empty());
    }

    #[test]
    fn router_refuses_an_empty_shard_list() {
        assert!(Router::start(RouterConfig::default()).is_err());
    }

    #[test]
    fn stats_render_mentions_every_line() {
        let mut s = RouterStats {
            requests: 5,
            relayed_errors: 1,
            failovers: 2,
            shard_down: 1,
            reloads: 4,
            connections: 3,
            went_down: 1,
            came_up: 1,
            forward_us: Histogram::new(),
        };
        s.forward_us.observe(120.0);
        let text = s.render();
        assert!(text.contains("routed 5 request(s)"), "{text}");
        assert!(text.contains("2 failover(s)"), "{text}");
        assert!(text.contains("4 rolling reload(s)"), "{text}");
        assert!(text.contains("membership"), "{text}");
        assert!(text.contains("forward us"), "{text}");
    }
}
