//! The bounded dynamic-batching queue between connection handlers and
//! the inference engine.
//!
//! Handlers [`try_push`](BatchQueue::try_push) requests; a full queue is
//! an immediate [`PushError::Full`] — the backpressure contract: the
//! server never buffers unboundedly, it tells the client to retry. The
//! engine blocks in [`next_batch`](BatchQueue::next_batch), which
//! implements the flush policy: once at least one request is waiting,
//! collect until either `max_batch` requests are available or `max_wait`
//! has elapsed, whichever comes first, then drain up to `max_batch`.
//!
//! [`close`](BatchQueue::close) flips the queue into drain mode: pushes
//! fail with [`PushError::Closed`], and `next_batch` keeps handing out
//! whatever is still queued (graceful shutdown drains in-flight work)
//! until it is empty, then returns `None`.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::arena::Slab;
use crate::proto::{self, Frame};
use crate::server::BankSet;

/// One queued inference request, carrying everything the engine needs to
/// compute and route the response.
#[derive(Debug)]
pub struct Request {
    /// Wire request id, echoed in the response frame.
    pub id: u64,
    /// Precision tag (already validated against the model bank).
    pub tag: u8,
    /// The image, decoded to floats into a recycled arena slab — the
    /// slab returns to its pool when this request is dropped after its
    /// response is sent.
    pub image: Slab,
    /// The model version pinned at admission time: whatever
    /// [`BankSet`] was live when the handler accepted the request
    /// answers it, even if a hot-reload promotes a newer version while
    /// it waits in the queue. The old version's banks are reclaimed
    /// when the last pinned request drops this `Arc`.
    pub bank: Arc<BankSet>,
    /// The owning connection's writer channel.
    pub reply: mpsc::Sender<Frame>,
    /// When the request entered the queue (for the latency histogram).
    pub enqueued: Instant,
}

/// Adaptive `Busy` retry hint: how long a rejected client should back
/// off, given the queue depth it was rejected at and the engine's
/// recently observed per-request drain time.
///
/// The hint estimates how long the engine needs to work through the
/// backlog (`depth · drain_ns_per_req`), raised to at least `floor_us`
/// (so an idle or freshly started server still spreads retries out) and
/// then clamped into the protocol-wide 1ms..1s band by
/// [`proto::clamp_retry_hint_us`] — the same clamp the router's
/// `ShardDown` hint rides, so the two paths can never drift apart.
/// **Contract:** for a fixed drain rate the hint grows monotonically
/// with depth — a deeper queue never shortens the suggested backoff.
/// Pinned by `retry_hint_grows_with_depth`.
pub fn retry_hint_us(depth: usize, drain_ns_per_req: u64, floor_us: u32) -> u32 {
    let est_us = (depth as u64).saturating_mul(drain_ns_per_req) / 1_000;
    proto::clamp_retry_hint_us(est_us.max(u64::from(floor_us)))
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure; retry later.
    Full,
    /// The server is draining for shutdown; no new work is accepted.
    Closed,
}

struct Inner {
    items: VecDeque<Request>,
    closed: bool,
}

/// A bounded MPSC queue with a batching consumer.
pub struct BatchQueue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    cap: usize,
}

impl BatchQueue {
    /// A queue holding at most `cap` requests (`cap >= 1`).
    pub fn new(cap: usize) -> BatchQueue {
        BatchQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a request, or refuses immediately — this never blocks,
    /// so a slow engine translates into `Full` rejections at the edge
    /// rather than unbounded buffering.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](BatchQueue::close).
    pub fn try_push(&self, req: Request) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.items.push_back(req);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Current queue depth (requests waiting, not yet drained).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Stops accepting new work and wakes the engine so it can drain
    /// what remains. Idempotent.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    /// The crash-simulation variant of [`close`](BatchQueue::close):
    /// stops accepting work *and discards everything still queued*, so
    /// queued requests are dropped without a response — exactly what a
    /// `kill -9` does to a real process's backlog. Used by
    /// `Server::kill` so chaos tests can crash an in-process shard.
    /// Idempotent.
    pub fn close_discarding(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        inner.items.clear();
        drop(inner);
        self.nonempty.notify_all();
    }

    /// True once [`close`](BatchQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Blocks until work is available, applies the flush policy, and
    /// drains up to `max_batch` requests. Returns `None` only when the
    /// queue is closed *and* empty — the engine's signal to exit after a
    /// complete drain.
    pub fn next_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<Request>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock().unwrap();
        // Phase 1: wait for the first request (or a close).
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
        // Phase 2: the batch window. Collect until max_batch requests are
        // waiting or max_wait elapses; a close flushes immediately.
        let deadline = Instant::now() + max_wait;
        while inner.items.len() < max_batch && !inner.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self.nonempty.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = inner.items.len().min(max_batch);
        Some(inner.items.drain(..take).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn req(id: u64) -> (Request, mpsc::Receiver<Frame>) {
        let (tx, rx) = channel();
        let arena = crate::arena::Arena::new();
        let mut image = arena.take(1);
        image.as_mut_vec().push(0.0);
        (
            Request {
                id,
                tag: 0,
                image,
                bank: BankSet::test_stub(),
                reply: tx,
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn retry_hint_grows_with_depth() {
        // The adaptive-backpressure contract: for a fixed drain rate the
        // hint is monotone non-decreasing in depth, and never escapes
        // the protocol-wide 1ms..1s band.
        for &drain_ns in &[0u64, 10_000, 150_000, 2_000_000] {
            let mut last = 0;
            for depth in 0..512 {
                let hint = retry_hint_us(depth, drain_ns, 100);
                assert!(
                    hint >= last,
                    "hint shrank: depth {depth} drain {drain_ns} {hint} < {last}"
                );
                assert!(
                    u64::from(hint) >= proto::RETRY_HINT_MIN_US,
                    "band floor violated at depth {depth}"
                );
                last = hint;
            }
        }
    }

    #[test]
    fn retry_hint_floor_and_ceiling() {
        // Empty queue with a sub-band floor: the shared 1 ms minimum
        // applies (a shorter hint would just make clients spin).
        assert_eq!(retry_hint_us(0, 1_000_000, 250), 1_000);
        // A floor inside the band is respected as-is.
        assert_eq!(retry_hint_us(0, 1_000_000, 2_500), 2_500);
        // Backlog estimate dominates once it exceeds the floor.
        assert_eq!(retry_hint_us(8, 500_000, 100), 4_000);
        // A pathological estimate is capped at one second...
        assert_eq!(retry_hint_us(10_000, u64::MAX, 100), 1_000_000);
        // ...and so is a pathological floor.
        assert_eq!(retry_hint_us(0, 0, u32::MAX), 1_000_000);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let q = BatchQueue::new(2);
        let mut rxs = Vec::new();
        for id in 0..2 {
            let (r, rx) = req(id);
            q.try_push(r).unwrap();
            rxs.push(rx);
        }
        let (r, _rx) = req(2);
        assert_eq!(q.try_push(r).unwrap_err(), PushError::Full);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = BatchQueue::new(8);
        let (r, _rx) = req(0);
        q.try_push(r).unwrap();
        q.close();
        let (r, _rx2) = req(1);
        assert_eq!(q.try_push(r).unwrap_err(), PushError::Closed);
        // The queued request still comes out before the None.
        let batch = q.next_batch(16, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(q.next_batch(16, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn close_discarding_drops_the_backlog_unanswered() {
        let q = BatchQueue::new(8);
        let (r, rx) = req(0);
        q.try_push(r).unwrap();
        q.close_discarding();
        assert!(q.is_closed());
        assert_eq!(q.depth(), 0);
        // The engine sees an immediate end-of-work, and the queued
        // request's reply channel is simply dropped — no response.
        assert!(q.next_batch(16, Duration::from_millis(1)).is_none());
        assert!(rx.recv().is_err());
    }

    #[test]
    fn flush_on_max_batch_without_waiting_out_the_window() {
        let q = Arc::new(BatchQueue::new(64));
        let mut rxs = Vec::new();
        for id in 0..4 {
            let (r, rx) = req(id);
            q.try_push(r).unwrap();
            rxs.push(rx);
        }
        let start = Instant::now();
        // Window is a full second, but 4 requests ≥ max_batch=4 flush now.
        let batch = q.next_batch(4, Duration::from_secs(1)).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(start.elapsed() < Duration::from_millis(500));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn flush_on_window_expiry_with_a_short_batch() {
        let q = BatchQueue::new(64);
        let (r, _rx) = req(0);
        q.try_push(r).unwrap();
        let batch = q.next_batch(16, Duration::from_millis(5)).unwrap();
        assert_eq!(batch.len(), 1, "window expiry flushes a partial batch");
    }

    #[test]
    fn drains_at_most_max_batch_leaving_the_rest() {
        let q = BatchQueue::new(64);
        let mut rxs = Vec::new();
        for id in 0..10 {
            let (r, rx) = req(id);
            q.try_push(r).unwrap();
            rxs.push(rx);
        }
        let batch = q.next_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].id, 0, "FIFO order");
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn waiting_engine_wakes_on_push() {
        let q = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.next_batch(8, Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(20));
        let (r, _rx) = req(0);
        q.try_push(r).unwrap();
        let batch = t.join().unwrap().unwrap();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn close_wakes_a_blocked_engine() {
        let q = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.next_batch(8, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(t.join().unwrap().is_none());
    }
}
