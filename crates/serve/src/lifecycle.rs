//! Versioned model lifecycle: checkpointed banks, the canary gate, and
//! typed reload failures.
//!
//! A serving bank is reproducible from `(seed, base weights)`: every
//! precision variant is calibrated from the same float32 base network,
//! so snapshotting that one `state_dict` (plus the seed that drives
//! calibration batches) captures the whole seven-precision bank. The
//! [`BankCheckpoint`] rides in a `QNNF` container
//! (`KIND_MODEL_BANK`) with the crate-wide guarantees: CRC32 trailer,
//! atomic writes, `.bak` rotation on save, and fallback to the rotation
//! on a corrupt primary.
//!
//! The reload state machine (DESIGN.md §14) is
//! `Load → Canary → Persist → Swap → Drain → Reclaim`, with every
//! failure edge folding back to "keep serving the previous version
//! bit-identically":
//!
//! * **Load** — decode the candidate checkpoint; CRC mismatch,
//!   truncation and shape mismatch are typed [`ReloadError`]s.
//! * **Canary** — [`canary_gate`] forwards a seeded probe batch through
//!   the candidate under every precision tag and demands (a) finite
//!   logits, (b) batched ≡ single-shot bit-identity, (c) repeat-forward
//!   reproducibility, and (d) top-1 agreement with the live bank at or
//!   above a configured floor. Any miss is a typed rejection and the
//!   candidate is dropped.
//! * **Persist** then **Swap** — the promoted checkpoint is written to
//!   disk (rotating the previous one to `.bak`) *before* the in-memory
//!   swap, so a SIGKILL at any instant leaves the checkpoint path
//!   holding either the complete old bank or the complete new one —
//!   never a torn file — and a restart recovers whichever was durable.

use std::path::Path;

use qnn_faults::store::{self, wire, KIND_MODEL_BANK};
use qnn_faults::StoreError;
use qnn_nn::checkpoint::{bak_path, put_tensor, read_tensor};
use qnn_nn::NnError;
use qnn_tensor::Tensor;

use crate::model::{base_network, test_image, ModelBank, NUM_PRECISIONS};

/// Seed for the canary probe batch — shared by every server so a gate
/// decision is reproducible offline.
pub const CANARY_SEED: u64 = 0x00CA_9A11;

/// Probe images per precision tag in the canary gate.
pub const CANARY_PROBES: usize = 4;

/// A frozen serving bank: the seed that drives calibration plus the
/// float32 base weights every precision variant is derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct BankCheckpoint {
    /// Bank seed: drives the calibration batch and base-network build.
    pub seed: u64,
    /// `state_dict` of the float32 base network, in layer order.
    pub state: Vec<Tensor>,
}

impl BankCheckpoint {
    /// Snapshots the bank a fresh `ModelBank::build(seed)` would serve:
    /// the seed plus the seed-derived base weights.
    ///
    /// # Errors
    ///
    /// Propagates network construction errors.
    pub fn capture(seed: u64) -> Result<BankCheckpoint, NnError> {
        let net = base_network(seed)?;
        Ok(BankCheckpoint {
            seed,
            state: net.state_dict(),
        })
    }

    /// Builds the ready-to-serve bank this checkpoint describes.
    ///
    /// # Errors
    ///
    /// Typed shape/count mismatches via `Network::load_state`;
    /// construction and calibration errors.
    pub fn to_bank(&self) -> Result<ModelBank, NnError> {
        ModelBank::build_from(self.seed, Some(&self.state))
    }

    /// Serializes to the `QNNF` payload encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, self.seed);
        wire::put_u64(&mut buf, self.state.len() as u64);
        for t in &self.state {
            put_tensor(&mut buf, t);
        }
        buf
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`NnError::Store`] (`StoreError::Malformed`) on any structural
    /// inconsistency.
    pub fn decode(payload: &[u8]) -> Result<BankCheckpoint, NnError> {
        let mut r = wire::Reader::new(payload);
        let seed = r.u64()?;
        let n = r.count(1 << 16)?;
        let mut state = Vec::with_capacity(n);
        for _ in 0..n {
            state.push(read_tensor(&mut r)?);
        }
        r.expect_end()?;
        Ok(BankCheckpoint { seed, state })
    }

    /// Writes the checkpoint to `path` atomically, first rotating any
    /// existing file to `<path>.bak` — the same crash-safety contract as
    /// trainer checkpoints: a kill mid-save costs the rotation, never
    /// the previous bank.
    ///
    /// # Errors
    ///
    /// [`NnError::Store`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), NnError> {
        if path.exists() {
            std::fs::rename(path, bak_path(path))
                .map_err(|e| StoreError::io("rotate", path, &e))?;
        }
        store::write_atomic(path, KIND_MODEL_BANK, &self.encode())?;
        Ok(())
    }

    /// Loads and validates the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`NnError::Store`] on missing, truncated or corrupted files.
    pub fn load(path: &Path) -> Result<BankCheckpoint, NnError> {
        Self::decode(&store::read(path, KIND_MODEL_BANK)?)
    }

    /// Loads `path`, falling back to its `.bak` rotation when the
    /// primary is corrupt or missing. Returns the checkpoint and whether
    /// the fallback was used — the caller surfaces the latter as the
    /// `serve.checkpoint.fallback` warning counter.
    ///
    /// # Errors
    ///
    /// The *primary* file's error when no fallback rescues the load.
    pub fn load_latest(path: &Path) -> Result<(BankCheckpoint, bool), NnError> {
        match Self::load(path) {
            Ok(cp) => Ok((cp, false)),
            Err(primary) => {
                if let Ok(cp) = Self::load(&bak_path(path)) {
                    return Ok((cp, true));
                }
                Err(primary)
            }
        }
    }
}

/// Every way a hot-reload can be refused. All variants are non-fatal:
/// the server answers `ErrorCode::ReloadRejected` with
/// [`reason`](ReloadError::reason) and keeps serving the previous
/// version bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub enum ReloadError {
    /// The checkpoint file failed to load or decode (missing, CRC
    /// mismatch, truncation, malformed payload).
    Load {
        /// The underlying store/decode failure, rendered.
        detail: String,
    },
    /// The checkpoint decoded but does not fit the serving architecture
    /// (tensor count or shape mismatch), or bank construction failed.
    Build {
        /// The underlying build failure, rendered.
        detail: String,
    },
    /// The candidate bank failed the canary gate.
    Canary {
        /// Which probe check failed and how.
        detail: String,
    },
    /// Another reload is already in flight; reloads are single-file.
    InFlight,
    /// The promoted checkpoint could not be persisted; the swap is
    /// aborted so disk and memory never disagree.
    Persist {
        /// The underlying I/O failure, rendered.
        detail: String,
    },
}

impl ReloadError {
    /// The human-readable reason carried in the rejection frame.
    pub fn reason(&self) -> String {
        match self {
            ReloadError::Load { detail } => format!("checkpoint load failed: {detail}"),
            ReloadError::Build { detail } => format!("bank build failed: {detail}"),
            ReloadError::Canary { detail } => format!("canary gate failed: {detail}"),
            ReloadError::InFlight => "another reload is already in flight".to_string(),
            ReloadError::Persist { detail } => format!("checkpoint persist failed: {detail}"),
        }
    }
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason())
    }
}

impl std::error::Error for ReloadError {}

/// What the canary gate measured before its verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanaryReport {
    /// Probe forwards compared (tags × probes).
    pub probes: usize,
    /// Fraction of probes whose top-1 class matched the live bank.
    pub agreement: f32,
}

/// Runs the canary gate: seeded probe images through every precision of
/// the candidate bank, checked for finiteness, batched ≡ single-shot
/// bit-identity, repeat-forward reproducibility, and top-1 agreement
/// with the live bank at or above `min_agree` (a fraction in `0..=1`).
///
/// `min_agree = 0.0` keeps the integrity checks but accepts any
/// accuracy drift — the right floor when legitimately deploying
/// different weights; `1.0` demands bit-level behavioural equivalence
/// on the probe set.
///
/// # Errors
///
/// [`ReloadError::Canary`] naming the first failed check, or
/// [`ReloadError::Build`] if a probe forward itself errors.
pub fn canary_gate(
    candidate: &mut ModelBank,
    live: &mut ModelBank,
    min_agree: f32,
) -> Result<CanaryReport, ReloadError> {
    let build = |e: NnError| ReloadError::Build {
        detail: e.to_string(),
    };
    let per = candidate.input_len();
    let images: Vec<Vec<f32>> = (0..CANARY_PROBES)
        .map(|i| test_image(CANARY_SEED, i as u64, per))
        .collect();
    let refs: Vec<&[f32]> = images.iter().map(Vec::as_slice).collect();

    let mut probes = 0usize;
    let mut agreed = 0usize;
    for tag in 0..NUM_PRECISIONS {
        let batched = candidate.forward_batch(tag, &refs).map_err(build)?;
        let again = candidate.forward_batch(tag, &refs).map_err(build)?;
        for (i, (row, row2)) in batched.iter().zip(&again).enumerate() {
            if row.iter().any(|x| !x.is_finite()) {
                return Err(ReloadError::Canary {
                    detail: format!("non-finite logits (tag {tag} probe {i})"),
                });
            }
            if bits(row) != bits(row2) {
                return Err(ReloadError::Canary {
                    detail: format!("forward not reproducible (tag {tag} probe {i})"),
                });
            }
            let single = candidate.forward_single(tag, &images[i]).map_err(build)?;
            if bits(row) != bits(&single) {
                return Err(ReloadError::Canary {
                    detail: format!("batched != single-shot (tag {tag} probe {i})"),
                });
            }
            let reference = live.forward_single(tag, &images[i]).map_err(build)?;
            probes += 1;
            if argmax(row) == argmax(&reference) {
                agreed += 1;
            }
        }
    }
    let agreement = agreed as f32 / probes.max(1) as f32;
    if agreement < min_agree {
        return Err(ReloadError::Canary {
            detail: format!(
                "top-1 agreement {agreement:.3} below floor {min_agree:.3} \
                 ({agreed}/{probes} probes)"
            ),
        });
    }
    Ok(CanaryReport { probes, agreement })
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_faults::store::KIND_TRAIN_CHECKPOINT;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qnn-serve-lifecycle").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_encode_decode_round_trips() {
        let cp = BankCheckpoint::capture(0xA5).unwrap();
        let back = BankCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn restored_checkpoint_serves_bit_identically_to_fresh_build() {
        // The load-bearing invariant: a bank rebuilt from a captured
        // checkpoint answers every probe with the same bits as a bank
        // built from the seed directly — which is what lets the soak
        // verify responses without any weight exchange.
        let seed = 0x7E57;
        let cp = BankCheckpoint::capture(seed).unwrap();
        let mut from_cp = cp.to_bank().unwrap();
        let mut fresh = ModelBank::build(seed).unwrap();
        let img = test_image(seed, 9, fresh.input_len());
        for tag in 0..NUM_PRECISIONS {
            assert_eq!(
                from_cp.forward_single(tag, &img).unwrap(),
                fresh.forward_single(tag, &img).unwrap(),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn wrong_architecture_checkpoint_is_typed_build_error() {
        let mut cp = BankCheckpoint::capture(1).unwrap();
        cp.state.pop(); // drop a tensor: count mismatch
        assert!(matches!(cp.to_bank(), Err(NnError::InvalidSpec { .. })));
    }

    #[test]
    fn wrong_container_kind_is_reported() {
        let dir = tmp_dir("wrong-kind");
        let path = dir.join("bank.qnnf");
        store::write_atomic(&path, KIND_TRAIN_CHECKPOINT, b"nope").unwrap();
        assert!(matches!(
            BankCheckpoint::load(&path),
            Err(NnError::Store(StoreError::WrongKind { .. }))
        ));
    }

    #[test]
    fn canary_accepts_same_weights_at_full_agreement_floor() {
        let cp = BankCheckpoint::capture(3).unwrap();
        let mut candidate = cp.to_bank().unwrap();
        let mut live = ModelBank::build(3).unwrap();
        let report = canary_gate(&mut candidate, &mut live, 1.0).unwrap();
        assert_eq!(report.agreement, 1.0);
        assert_eq!(report.probes, CANARY_PROBES * NUM_PRECISIONS as usize);
    }

    #[test]
    fn canary_rejects_non_finite_weights() {
        let mut cp = BankCheckpoint::capture(3).unwrap();
        for t in &mut cp.state {
            for v in t.as_mut_slice() {
                *v = f32::NAN;
            }
        }
        let mut candidate = cp.to_bank().unwrap();
        let mut live = ModelBank::build(3).unwrap();
        match canary_gate(&mut candidate, &mut live, 0.0) {
            Err(ReloadError::Canary { detail }) => {
                assert!(detail.contains("non-finite"), "{detail}")
            }
            other => panic!("expected canary rejection, got {other:?}"),
        }
    }

    #[test]
    fn canary_rejects_divergence_under_strict_floor() {
        // Zeroed weights push every logit to the same value, so top-1
        // collapses to class 0 while the live bank's varies — the
        // agreement floor at 1.0 must reject the candidate.
        let mut cp = BankCheckpoint::capture(3).unwrap();
        for t in &mut cp.state {
            for v in t.as_mut_slice() {
                *v = 0.0;
            }
        }
        let mut candidate = cp.to_bank().unwrap();
        let mut live = ModelBank::build(3).unwrap();
        match canary_gate(&mut candidate, &mut live, 1.0) {
            Err(ReloadError::Canary { detail }) => {
                assert!(detail.contains("agreement"), "{detail}")
            }
            other => panic!("expected divergence rejection, got {other:?}"),
        }
    }

    #[test]
    fn bak_rotation_falls_back_bit_identically_on_crc_corruption() {
        // Satellite: save A, save B (rotating A to .bak), corrupt the
        // primary's CRC — load_latest must recover A's *exact* bytes.
        let dir = tmp_dir("bak-crc");
        let path = dir.join("bank.qnnf");
        let a = BankCheckpoint::capture(11).unwrap();
        a.save(&path).unwrap();
        let b = BankCheckpoint::capture(22).unwrap();
        b.save(&path).unwrap(); // primary = B, .bak = A

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (got, used_fallback) = BankCheckpoint::load_latest(&path).unwrap();
        assert!(used_fallback, "corrupt primary must engage the fallback");
        assert_eq!(got, a, "fallback must be the rotated checkpoint, exact");
        // And the direct load error is the typed corruption, not a panic.
        assert!(matches!(
            BankCheckpoint::load(&path),
            Err(NnError::Store(StoreError::CrcMismatch { .. }))
        ));
    }

    #[test]
    fn bak_rotation_falls_back_bit_identically_on_truncation() {
        let dir = tmp_dir("bak-trunc");
        let path = dir.join("bank.qnnf");
        let a = BankCheckpoint::capture(33).unwrap();
        a.save(&path).unwrap();
        let b = BankCheckpoint::capture(44).unwrap();
        b.save(&path).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

        let (got, used_fallback) = BankCheckpoint::load_latest(&path).unwrap();
        assert!(used_fallback);
        assert_eq!(got, a);
        assert!(matches!(
            BankCheckpoint::load(&path),
            Err(NnError::Store(StoreError::Truncated { .. }))
        ));
    }

    #[test]
    fn missing_primary_with_bak_recovers_the_rotation() {
        // save() rotates before writing; a crash in that window leaves
        // only the .bak behind. load_latest must rescue it.
        let dir = tmp_dir("bak-missing");
        let path = dir.join("bank.qnnf");
        let a = BankCheckpoint::capture(55).unwrap();
        a.save(&path).unwrap();
        std::fs::rename(&path, bak_path(&path)).unwrap();

        let (got, used_fallback) = BankCheckpoint::load_latest(&path).unwrap();
        assert!(used_fallback);
        assert_eq!(got, a);
    }

    #[test]
    fn unrecoverable_corruption_surfaces_the_primary_error() {
        let dir = tmp_dir("bak-none");
        let path = dir.join("bank.qnnf");
        let a = BankCheckpoint::capture(66).unwrap();
        a.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..10]).unwrap();
        // No .bak exists (first save never rotates), so the primary's
        // truncation error must surface.
        assert!(matches!(
            BankCheckpoint::load_latest(&path),
            Err(NnError::Store(StoreError::Truncated { .. }))
        ));
    }
}
