//! The model bank: one ready-to-serve [`Network`] per Table III precision.
//!
//! The serving contract is *bit-identity*: a response computed inside a
//! dynamic batch must equal, bit for bit, a single-shot forward of the
//! same image. That holds because every kernel in the forward path
//! computes each output element from its own image's inputs in a fixed
//! association order — the same invariant the compute core guarantees for
//! thread counts — and [`tests::batched_equals_single_shot`] pins it.
//!
//! Both sides of the wire build the same bank from the same seed
//! ([`MODEL_SEED`]), so a load generator can verify responses against its
//! own local single-shot forwards without any weight exchange.

use qnn_nn::arch::NetworkSpec;
use qnn_nn::{ActivationCalibration, Mode, Network, NnError};
use qnn_quant::{calibrate::Method, Precision};
use qnn_tensor::rng::{derive_seed, seeded};
use qnn_tensor::{Shape, Tensor};

/// Seed both the server and the soak client build their banks from.
pub const MODEL_SEED: u64 = 0x51AB;

/// Number of precision tags — the seven rows of Table III, in order.
pub const NUM_PRECISIONS: u8 = 7;

/// Maps a wire precision tag to its Table III precision (tag = row index).
pub fn precision_for_tag(tag: u8) -> Option<Precision> {
    Precision::paper_sweep().into_iter().nth(tag as usize)
}

/// The served architecture: a LeNet-style conv/pool/dense stack on an
/// `8×8` single-channel input, small enough that a CI soak run with
/// hundreds of requests per precision finishes in seconds while still
/// exercising conv, pooling and dense layers plus the native-kernel
/// dispatch.
pub fn serve_spec() -> NetworkSpec {
    NetworkSpec::new("serve-lenet-8", (1, 8, 8))
        .conv(6, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(10, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(10)
}

/// A deterministic synthetic image for request `i` of a run seeded with
/// `seed` — what the soak load generator sends and what it forwards
/// locally to compute the expected logits.
pub fn test_image(seed: u64, i: u64, len: usize) -> Vec<f32> {
    let mut r = seeded(derive_seed(seed, i));
    (0..len).map(|_| r.gen_range(-1.0f32..1.0)).collect()
}

/// The float32 base network every precision variant of a `seed` bank is
/// derived from — the thing a [`crate::lifecycle::BankCheckpoint`]
/// snapshots. Uses the same derived build seed as
/// [`ModelBank::build`], so a captured-then-restored state is
/// bit-identical to a fresh build.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn base_network(seed: u64) -> Result<Network, NnError> {
    Network::build(&serve_spec(), derive_seed(seed, 0x9e7))
}

/// One network per Table III precision, all sharing the same base
/// weights, calibrated once at construction.
pub struct ModelBank {
    nets: Vec<Network>,
    input: (usize, usize, usize),
    classes: usize,
    /// Reusable batch-assembly buffer: taken before each forward,
    /// recovered from the input tensor afterwards, so steady-state
    /// serving never re-allocates the staging copy.
    batch_buf: Vec<f32>,
    /// The last forward's logits, kept so
    /// [`forward_batch_flat`](ModelBank::forward_batch_flat) can hand out
    /// a borrowed row-major slice without a per-row copy.
    logits: Option<Tensor>,
}

impl std::fmt::Debug for ModelBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBank")
            .field("precisions", &self.nets.len())
            .field("input", &self.input)
            .finish()
    }
}

impl ModelBank {
    /// Builds and calibrates the bank from `seed`: every precision gets a
    /// network with identical base weights (same build seed), quantized
    /// against the same deterministic calibration batch.
    ///
    /// # Errors
    ///
    /// Propagates network construction and calibration errors.
    pub fn build(seed: u64) -> Result<ModelBank, NnError> {
        Self::build_from(seed, None)
    }

    /// Builds the bank from `seed`, optionally replacing the seed-derived
    /// base weights with a checkpointed `state_dict` before calibration.
    ///
    /// `build_from(seed, None)` and `build_from(seed, Some(state))` with
    /// `state` captured from the same seed's freshly built base network
    /// are bit-identical — per-precision quantization always calibrates
    /// from whatever base weights are in place, so a hot-reloaded
    /// checkpoint and a from-scratch build of the same weights serve the
    /// same bits.
    ///
    /// # Errors
    ///
    /// Propagates network construction and calibration errors; a `state`
    /// whose tensor count or shapes disagree with the serving
    /// architecture fails typed via [`Network::load_state`].
    pub fn build_from(seed: u64, state: Option<&[Tensor]>) -> Result<ModelBank, NnError> {
        let spec = serve_spec();
        let input = spec.input();
        let calib = Self::calib_batch(seed, input);
        let mut nets = Vec::with_capacity(NUM_PRECISIONS as usize);
        for precision in Precision::paper_sweep() {
            let mut net = base_network(seed)?;
            if let Some(state) = state {
                net.load_state(state)?;
            }
            net.set_precision(
                precision,
                Method::MaxAbs,
                &calib,
                ActivationCalibration::PerLayer,
            )?;
            nets.push(net);
        }
        let classes = spec.num_classes().unwrap_or(0);
        Ok(ModelBank {
            nets,
            input,
            classes,
            batch_buf: Vec::new(),
            logits: None,
        })
    }

    /// The bank every shipped binary uses ([`MODEL_SEED`]).
    ///
    /// # Errors
    ///
    /// Same as [`build`](ModelBank::build).
    pub fn default_bank() -> Result<ModelBank, NnError> {
        ModelBank::build(MODEL_SEED)
    }

    fn calib_batch(seed: u64, (c, h, w): (usize, usize, usize)) -> Tensor {
        let n = 8;
        let mut r = seeded(derive_seed(seed, 0xca11));
        let data: Vec<f32> = (0..n * c * h * w)
            .map(|_| r.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(Shape::d4(n, c, h, w), data).expect("calibration batch shape")
    }

    /// Floats per request image (`c*h*w`).
    pub fn input_len(&self) -> usize {
        let (c, h, w) = self.input;
        c * h * w
    }

    /// Floats per response (`classes`).
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Runs one stacked Eval forward over `images` (each of
    /// [`input_len`](ModelBank::input_len) floats) under the precision of
    /// `tag`, returning the row-major logits `(flat, row_len)` — `flat`
    /// holds `images.len()` rows of `row_len` floats each, borrowed until
    /// the next forward. This is the copy-free form the serving engine
    /// uses: response frames are built straight off the returned rows.
    ///
    /// # Errors
    ///
    /// Returns `None`-tag errors as [`NnError::InvalidSpec`]; propagates
    /// forward-pass errors.
    pub fn forward_batch_flat(
        &mut self,
        tag: u8,
        images: &[&[f32]],
    ) -> Result<(&[f32], usize), NnError> {
        let net = self
            .nets
            .get_mut(tag as usize)
            .ok_or_else(|| NnError::InvalidSpec {
                network: "serve".to_string(),
                reason: format!("unknown precision tag {tag}"),
            })?;
        let (c, h, w) = self.input;
        let per = c * h * w;
        let n = images.len();
        let mut data = std::mem::take(&mut self.batch_buf);
        data.clear();
        data.reserve(n * per);
        for img in images {
            debug_assert_eq!(img.len(), per);
            data.extend_from_slice(img);
        }
        let batch = Tensor::from_vec(Shape::d4(n, c, h, w), data).map_err(NnError::from)?;
        let logits = net.forward(&batch, Mode::Eval)?;
        // Recover the staging buffer (and its capacity) for the next call.
        self.batch_buf = batch.into_vec();
        let k = logits.shape().dim(1);
        let flat = self.logits.insert(logits).as_slice();
        Ok((flat, k))
    }

    /// [`forward_batch_flat`](ModelBank::forward_batch_flat) with each
    /// logits row copied into its own vector — the convenient form the
    /// soak client and tests use.
    ///
    /// # Errors
    ///
    /// Same as [`forward_batch_flat`](ModelBank::forward_batch_flat).
    pub fn forward_batch(&mut self, tag: u8, images: &[&[f32]]) -> Result<Vec<Vec<f32>>, NnError> {
        let (flat, k) = self.forward_batch_flat(tag, images)?;
        Ok(flat.chunks_exact(k).map(<[f32]>::to_vec).collect())
    }

    /// Single-shot forward of one image — the reference the soak client
    /// compares every batched response against.
    ///
    /// # Errors
    ///
    /// Same as [`forward_batch`](ModelBank::forward_batch).
    pub fn forward_single(&mut self, tag: u8, image: &[f32]) -> Result<Vec<f32>, NnError> {
        Ok(self.forward_batch(tag, &[image])?.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_cover_the_paper_sweep() {
        assert_eq!(
            Precision::paper_sweep().len(),
            NUM_PRECISIONS as usize,
            "tag space must match Table III"
        );
        assert_eq!(precision_for_tag(0), Some(Precision::float32()));
        assert_eq!(precision_for_tag(6), Some(Precision::binary()));
        assert_eq!(precision_for_tag(NUM_PRECISIONS), None);
    }

    #[test]
    fn batched_equals_single_shot() {
        // The serving contract: any image's logits are independent of the
        // batch it rode in, bit for bit, under every precision.
        let mut bank = ModelBank::build(7).unwrap();
        let per = bank.input_len();
        let images: Vec<Vec<f32>> = (0..5).map(|i| test_image(7, i, per)).collect();
        let refs: Vec<&[f32]> = images.iter().map(Vec::as_slice).collect();
        for tag in 0..NUM_PRECISIONS {
            let batched = bank.forward_batch(tag, &refs).unwrap();
            for (i, img) in images.iter().enumerate() {
                let single = bank.forward_single(tag, img).unwrap();
                let same = single
                    .iter()
                    .zip(&batched[i])
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "tag {tag} image {i}: batched != single-shot");
            }
        }
    }

    #[test]
    fn same_seed_builds_identical_banks() {
        let mut a = ModelBank::default_bank().unwrap();
        let mut b = ModelBank::default_bank().unwrap();
        let img = test_image(MODEL_SEED, 3, a.input_len());
        for tag in 0..NUM_PRECISIONS {
            assert_eq!(
                a.forward_single(tag, &img).unwrap(),
                b.forward_single(tag, &img).unwrap(),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn distinct_precisions_actually_differ() {
        let mut bank = ModelBank::default_bank().unwrap();
        let img = test_image(MODEL_SEED, 1, bank.input_len());
        let fp = bank.forward_single(0, &img).unwrap();
        let q4 = bank.forward_single(4, &img).unwrap();
        assert_ne!(fp, q4, "fixed(4,4) must perturb logits vs float32");
    }
}
