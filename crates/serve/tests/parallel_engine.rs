//! Pins the two serving hot-path contracts this crate's raw-speed work
//! rests on:
//!
//! 1. **Parallel-engine bit-identity** — batched forwards fanned out
//!    over `--engine-threads` replicas return, bit for bit, the logits a
//!    single-shot forward computes, at every compute-pool thread count
//!    (`QNN_THREADS` 1/2/8), engine-threads 1 vs 4, across all seven
//!    Table III precisions, over ≥256 seeded requests.
//! 2. **Arena reuse** — steady-state request intake performs no arena
//!    allocation: after a short warmup, `serve.alloc.bytes` (surfaced as
//!    [`Server::arena_allocated_bytes`]) stays flat no matter how many
//!    more requests flow.

use std::collections::HashMap;
use std::time::Duration;

use qnn_serve::proto::FrameKind;
use qnn_serve::{ModelBank, ServeClient, ServeConfig, Server, MODEL_SEED, NUM_PRECISIONS};
use qnn_tensor::par::set_threads;

/// Distinct from the images other e2e tests send, so failures point here.
const CASE_BASE: u64 = 0x9000;
const CASES: usize = 256;

/// Runs `CASES` pipelined requests against `server` on one connection and
/// returns `req_id → logits bits`.
fn drive(addr: &str, images: &[Vec<f32>]) -> HashMap<u64, Vec<u32>> {
    let mut c = ServeClient::connect(addr).expect("connect");
    c.set_read_timeout(Duration::from_secs(30)).unwrap();
    // Window the pipeline below the queue capacity so nothing bounces
    // with Busy — this test pins bit-identity, not backpressure.
    let window = 64usize;
    let mut id_to_case: HashMap<u64, usize> = HashMap::new();
    let mut out = HashMap::new();
    let mut next_case = 0usize;
    let mut in_flight = 0usize;
    while out.len() < images.len() {
        while in_flight < window && next_case < images.len() {
            let tag = (next_case % NUM_PRECISIONS as usize) as u8;
            let id = c.send_infer(tag, &images[next_case]).expect("send");
            id_to_case.insert(id, next_case);
            next_case += 1;
            in_flight += 1;
        }
        let f = c.recv_frame().expect("response");
        assert_eq!(f.kind, FrameKind::InferOk, "unexpected {:?}", f.kind);
        let bits: Vec<u32> = f
            .payload_f32s()
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        out.insert(f.req_id, bits);
        in_flight -= 1;
    }
    // Map req_id space back to case space.
    out.into_iter()
        .map(|(id, bits)| (id_to_case[&id] as u64, bits))
        .collect()
}

#[test]
fn parallel_engine_bit_identical_to_single_shot_256_cases() {
    // Reference: single-shot forwards on a local bank at one compute
    // thread — the ground truth every served configuration must match.
    set_threads(Some(1));
    let mut reference = ModelBank::default_bank().unwrap();
    let per = reference.input_len();
    let images: Vec<Vec<f32>> = (0..CASES)
        .map(|i| qnn_serve::model::test_image(MODEL_SEED, CASE_BASE + i as u64, per))
        .collect();
    let expected: Vec<Vec<u32>> = images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let tag = (i % NUM_PRECISIONS as usize) as u8;
            reference
                .forward_single(tag, img)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();

    for &pool_threads in &[1usize, 2, 8] {
        set_threads(Some(pool_threads));
        for &engine_threads in &[1usize, 4] {
            let server = Server::start(ServeConfig {
                engine_threads,
                max_batch: 32,
                ..ServeConfig::default()
            })
            .expect("server start");
            let got = drive(&server.local_addr().to_string(), &images);
            for (case, want) in expected.iter().enumerate() {
                assert_eq!(
                    &got[&(case as u64)],
                    want,
                    "case {case} drifted at QNN_THREADS={pool_threads} \
                     engine-threads={engine_threads}"
                );
            }
            server.shutdown();
            server.join();
        }
    }
    set_threads(None);
}

#[test]
fn steady_state_requests_allocate_nothing_in_the_arena() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, CASE_BASE, bank.input_len());

    let mut c = ServeClient::connect(&addr).unwrap();
    // Warmup: populate the slab pool's working set.
    for _ in 0..32 {
        c.infer(0, &img).unwrap();
    }
    let after_warmup = server.arena_allocated_bytes();
    assert!(after_warmup > 0, "warmup must have allocated slabs");
    for i in 0..200 {
        let tag = (i % NUM_PRECISIONS as usize) as u8;
        c.infer(tag, &img).unwrap();
        assert_eq!(
            server.arena_allocated_bytes(),
            after_warmup,
            "request {i} allocated in steady state"
        );
    }
    c.shutdown_server().unwrap();
    server.join();
}
