//! End-to-end tests over real TCP sockets: concurrent bit-identity,
//! backpressure, graceful drain ordering, and malformed-frame handling.

use std::sync::Arc;
use std::time::Duration;

use qnn_serve::proto::{Frame, FrameKind, HEADER_LEN, MAX_PAYLOAD};
use qnn_serve::{
    ErrorCode, ModelBank, ServeClient, ServeConfig, ServeError, Server, MODEL_SEED, NUM_PRECISIONS,
};

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("server start");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn concurrent_clients_all_tags_bit_identical() {
    let (server, addr) = start(ServeConfig::default());
    let bank = Arc::new({
        let mut b = ModelBank::default_bank().unwrap();
        // Precompute every expectation single-shot up front, so worker
        // threads only compare bytes.
        let n = 28usize;
        let imgs: Vec<Vec<f32>> = (0..n)
            .map(|i| qnn_serve::model::test_image(MODEL_SEED, i as u64, b.input_len()))
            .collect();
        let expected: Vec<Vec<f32>> = imgs
            .iter()
            .enumerate()
            .map(|(i, img)| {
                b.forward_single((i % NUM_PRECISIONS as usize) as u8, img)
                    .unwrap()
            })
            .collect();
        (imgs, expected)
    });

    let clients = 4usize;
    let mut threads = Vec::new();
    for t in 0..clients {
        let addr = addr.clone();
        let bank = Arc::clone(&bank);
        threads.push(std::thread::spawn(move || {
            let (imgs, expected) = &*bank;
            let mut c = ServeClient::connect(&addr).unwrap();
            for i in (t..imgs.len()).step_by(clients) {
                let tag = (i % NUM_PRECISIONS as usize) as u8;
                let (logits, _retries) = c.infer_retry(tag, &imgs[i], 64).unwrap();
                let got: Vec<u32> = logits.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = expected[i].iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want, "image {i} tag {tag}: served logits drifted");
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.requests, 28, "every request answered exactly once");
    assert_eq!(stats.connections, clients as u64);
}

#[test]
fn full_queue_rejects_busy_with_retry_hint() {
    // A tiny queue and a long batch window: the engine sits in its batch
    // window while a pipelining client floods it, so pushes past cap=2
    // must bounce with Busy.
    let cfg = ServeConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(500),
        queue_cap: 2,
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);
    let mut c = ServeClient::connect(&addr).unwrap();
    let mut bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, 0, bank.input_len());
    let expected = bank.forward_single(0, &img).unwrap();

    let total = 10usize;
    let mut ids = Vec::new();
    for _ in 0..total {
        ids.push(c.send_infer(0, &img).unwrap());
    }
    let mut ok = 0usize;
    let mut busy = 0usize;
    for _ in 0..total {
        let f = c.recv_frame().unwrap();
        assert!(ids.contains(&f.req_id));
        match f.kind {
            FrameKind::InferOk => {
                assert_eq!(f.payload_f32s().unwrap(), expected);
                ok += 1;
            }
            FrameKind::Error => {
                let (code, retry_after_us, _msg) = f.error_info().unwrap();
                assert_eq!(code, ErrorCode::Busy);
                assert!(retry_after_us >= 100, "Busy must carry a retry hint");
                busy += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(ok >= 2, "at least the queued requests succeed (got {ok})");
    assert!(busy > 0, "cap-2 queue under a 10-deep pipeline must reject");
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.rejected_busy, busy as u64);
}

#[test]
fn graceful_drain_answers_inflight_before_ack() {
    let cfg = ServeConfig {
        // A long window keeps the pipelined requests queued when the
        // shutdown lands, making the drain do real work.
        max_batch: 64,
        max_wait: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);
    let mut c = ServeClient::connect(&addr).unwrap();
    let bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, 7, bank.input_len());

    let n = 6usize;
    let mut infer_ids = Vec::new();
    for i in 0..n {
        infer_ids.push(
            c.send_infer((i % NUM_PRECISIONS as usize) as u8, &img)
                .unwrap(),
        );
    }
    let shutdown_id = c.send_shutdown().unwrap();

    let mut answered = Vec::new();
    loop {
        let f = c.recv_frame().unwrap();
        match f.kind {
            FrameKind::InferOk => answered.push(f.req_id),
            FrameKind::ShutdownAck => {
                assert_eq!(f.req_id, shutdown_id);
                break;
            }
            FrameKind::Error => {
                // Requests that raced the queue close are refused with
                // ShuttingDown — allowed, but they count as answered.
                let (code, _, _) = f.error_info().unwrap();
                assert_eq!(code, ErrorCode::ShuttingDown);
                answered.push(f.req_id);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(
        answered.len(),
        n,
        "every pipelined request is answered before the ShutdownAck"
    );
    for id in infer_ids {
        assert!(answered.contains(&id));
    }
    server.join();
}

#[test]
fn new_work_after_shutdown_is_refused_typed() {
    let (server, addr) = start(ServeConfig::default());
    let bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, 1, bank.input_len());

    let mut c1 = ServeClient::connect(&addr).unwrap();
    server.shutdown(); // close the queue without stopping the sockets yet
    match c1.infer(0, &img) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    server.join();
}

#[test]
fn bad_precision_tag_is_rejected_and_connection_survives() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    let mut bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, 2, bank.input_len());

    match c.infer(NUM_PRECISIONS + 3, &img) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::BadPrecision),
        other => panic!("expected BadPrecision, got {other:?}"),
    }
    // The same connection still serves valid requests afterwards.
    let logits = c.infer(0, &img).unwrap();
    assert_eq!(logits, bank.forward_single(0, &img).unwrap());
    c.shutdown_server().unwrap();
    server.join();
}

#[test]
fn wrong_image_length_is_bad_payload_and_connection_survives() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    let mut bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, 3, bank.input_len());

    match c.infer(0, &img[..img.len() - 1]) {
        Err(ServeError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::BadPayload),
        other => panic!("expected BadPayload, got {other:?}"),
    }
    let logits = c.infer(0, &img).unwrap();
    assert_eq!(logits, bank.forward_single(0, &img).unwrap());
    c.shutdown_server().unwrap();
    server.join();
}

#[test]
fn corrupted_crc_over_tcp_gets_typed_error_then_close() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(10)).unwrap();

    let mut bytes = Frame::infer(42, 0, &[0.5f32; 4]).encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // smash the CRC trailer
    c.send_raw(&bytes).unwrap();

    let f = c.recv_frame().expect("server answers before closing");
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.req_id, 42, "error frame echoes the request id");
    let (code, _, _) = f.error_info().unwrap();
    assert_eq!(code, ErrorCode::BadCrc);
    // CRC failure poisons the stream: the server hangs up afterwards.
    match c.recv_frame() {
        Err(ServeError::Proto(qnn_serve::ProtoError::Eof)) => {}
        other => panic!("expected EOF after fatal frame, got {other:?}"),
    }
    server.shutdown();
    server.join();
}

#[test]
fn bad_magic_over_tcp_gets_typed_error_then_close() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(10)).unwrap();

    let mut bytes = Frame::shutdown(7).encode();
    bytes[0] = b'X';
    // Re-seal the CRC so only the magic is wrong (proves field ordering:
    // magic is checked before anything else, req_id is not trusted).
    let crc = qnn_faults::crc32::checksum(&bytes[..bytes.len() - 4]);
    let last = bytes.len() - 4;
    bytes[last..].copy_from_slice(&crc.to_le_bytes());
    c.send_raw(&bytes).unwrap();

    let f = c.recv_frame().unwrap();
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.req_id, 0, "req_id is untrusted when the magic is wrong");
    let (code, _, _) = f.error_info().unwrap();
    assert_eq!(code, ErrorCode::BadMagic);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_declaration_is_refused_without_allocation() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(10)).unwrap();

    let mut bytes = Frame::shutdown(9).encode();
    bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB payload, allegedly
    c.send_raw(&bytes).unwrap();

    let f = c.recv_frame().unwrap();
    assert_eq!(f.kind, FrameKind::Error);
    let (code, _, msg) = f.error_info().unwrap();
    assert_eq!(code, ErrorCode::Oversized);
    assert!(
        msg.contains(&MAX_PAYLOAD.to_string()),
        "error names the cap: {msg}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn truncated_frame_then_half_close_gets_typed_error() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(10)).unwrap();

    let bytes = Frame::infer(11, 0, &[1.0f32; 8]).encode();
    c.send_raw(&bytes[..HEADER_LEN + 5]).unwrap(); // header + partial payload
    c.finish_writes().unwrap(); // EOF mid-frame

    let f = c.recv_frame().unwrap();
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.req_id, 11, "header made it through, so the id is known");
    let (code, _, _) = f.error_info().unwrap();
    assert_eq!(code, ErrorCode::Truncated);
    server.shutdown();
    server.join();
}

#[test]
fn response_kind_sent_to_server_is_protocol_misuse_not_a_crash() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(10)).unwrap();

    c.send_raw(&Frame::infer_ok(13, &[1.0, 2.0]).encode())
        .unwrap();
    let f = c.recv_frame().unwrap();
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.req_id, 13);
    let (code, _, _) = f.error_info().unwrap();
    assert_eq!(code, ErrorCode::BadKind);

    // Misuse is survivable: the stream still frames, so real work flows.
    let mut bank = ModelBank::default_bank().unwrap();
    let img = qnn_serve::model::test_image(MODEL_SEED, 4, bank.input_len());
    let logits = c.infer(0, &img).unwrap();
    assert_eq!(logits, bank.forward_single(0, &img).unwrap());
    c.shutdown_server().unwrap();
    server.join();
}

// ---------------------------------------------------------------------------
// Hot-reload lifecycle: promote, reject, persist, recover.
// ---------------------------------------------------------------------------

fn reload_tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("qnn-serve-reload-e2e")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One versioned round trip asserting the logits are bit-identical to a
/// local forward on `bank` and that the version byte matches.
fn assert_serves_bank(c: &mut ServeClient, bank: &mut ModelBank, version_byte: u8, salt: u64) {
    let img = qnn_serve::model::test_image(MODEL_SEED, salt, bank.input_len());
    let tag = (salt % u64::from(NUM_PRECISIONS)) as u8;
    let (v, logits) = c.infer_versioned(tag, &img).unwrap();
    assert_eq!(v, version_byte, "version byte drifted");
    let got: Vec<u32> = logits.iter().map(|x| x.to_bits()).collect();
    let want: Vec<u32> = bank
        .forward_single(tag, &img)
        .unwrap()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(got, want, "served logits are not the pinned version's bits");
}

#[test]
fn hot_reload_promotes_and_serves_the_new_version_bit_identically() {
    let dir = reload_tmp_dir("promote");
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(30)).unwrap();

    let mut old_bank = ModelBank::default_bank().unwrap();
    assert_serves_bank(&mut c, &mut old_bank, 1, 0);
    assert_eq!(server.model_version(), 1);
    assert_eq!(server.model_seed(), MODEL_SEED);

    // Checkpoint a different seed's weights and hot-swap to them.
    let new_seed = 0xB0B5u64;
    let path = dir.join("next.qnnf");
    qnn_serve::BankCheckpoint::capture(new_seed)
        .unwrap()
        .save(&path)
        .unwrap();
    let (version, seed) = c.reload(path.to_str().unwrap()).unwrap();
    assert_eq!((version, seed), (2, new_seed));
    assert_eq!(server.model_version(), 2);
    assert_eq!(server.model_seed(), new_seed);

    // Every post-swap response carries the new version byte and the new
    // bank's exact bits.
    let mut new_bank = ModelBank::build(new_seed).unwrap();
    for salt in 1..8 {
        assert_serves_bank(&mut c, &mut new_bank, 2, salt);
    }
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.reloads_promoted, 1);
    assert_eq!(stats.reloads_rejected, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_rejected_typed_and_the_old_version_keeps_serving() {
    let dir = reload_tmp_dir("reject");
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(30)).unwrap();

    // Missing file, then garbage bytes: both must be typed refusals,
    // never a crash or a partial swap.
    let missing = dir.join("nope.qnnf");
    let err = c.reload(missing.to_str().unwrap()).unwrap_err();
    match err {
        ServeError::Rejected { code, .. } => assert_eq!(code, ErrorCode::ReloadRejected),
        other => panic!("expected typed ReloadRejected, got {other:?}"),
    }

    let garbage = dir.join("garbage.qnnf");
    std::fs::write(&garbage, b"not a checkpoint at all").unwrap();
    let err = c.reload(garbage.to_str().unwrap()).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Rejected {
                code: ErrorCode::ReloadRejected,
                ..
            }
        ),
        "garbage checkpoint must reject typed, got {err:?}"
    );

    // The rejection left version 1 serving its exact bits.
    assert_eq!(server.model_version(), 1);
    let mut bank = ModelBank::default_bank().unwrap();
    for salt in 0..4 {
        assert_serves_bank(&mut c, &mut bank, 1, salt);
    }
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.reloads_promoted, 0);
    assert_eq!(stats.reloads_rejected, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_canary_rejects_zeroed_weights_and_rolls_back() {
    let dir = reload_tmp_dir("canary");
    let (server, addr) = start(ServeConfig {
        canary_min_agree: 1.0,
        ..ServeConfig::default()
    });
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(30)).unwrap();

    // A structurally valid checkpoint whose weights are all zero: it
    // loads and builds fine, but its top-1 predictions diverge from the
    // live bank, so a strict canary floor must refuse it.
    let mut cp = qnn_serve::BankCheckpoint::capture(MODEL_SEED).unwrap();
    for t in &mut cp.state {
        for w in t.as_mut_slice() {
            *w = 0.0;
        }
    }
    let path = dir.join("zeroed.qnnf");
    cp.save(&path).unwrap();

    let err = c.reload(path.to_str().unwrap()).unwrap_err();
    match err {
        ServeError::Rejected { code, msg, .. } => {
            assert_eq!(code, ErrorCode::ReloadRejected);
            assert!(
                msg.contains("canary"),
                "reason should name the canary: {msg}"
            );
        }
        other => panic!("expected canary rejection, got {other:?}"),
    }

    // Rollback is the no-op path: version 1 never stopped serving.
    assert_eq!(server.model_version(), 1);
    let mut bank = ModelBank::default_bank().unwrap();
    assert_serves_bank(&mut c, &mut bank, 1, 3);
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.reloads_rejected, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn promoted_reload_is_durable_and_bak_rotation_survives_primary_corruption() {
    let dir = reload_tmp_dir("durable");
    let cp_path = dir.join("bank.qnnf");

    // First boot with a checkpoint path persists the seed bank.
    let (server, addr) = start(ServeConfig {
        checkpoint: Some(cp_path.clone()),
        ..ServeConfig::default()
    });
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(30)).unwrap();
    assert!(cp_path.exists(), "first boot must persist the seed bank");

    // Promote seed B; the persist-before-swap rotates the seed-A bank
    // into `bank.qnnf.bak` and writes seed B as the new primary.
    let new_seed = 0xD00Du64;
    let next = dir.join("next.qnnf");
    qnn_serve::BankCheckpoint::capture(new_seed)
        .unwrap()
        .save(&next)
        .unwrap();
    assert_eq!(c.reload(next.to_str().unwrap()).unwrap(), (2, new_seed));
    server.shutdown();
    server.join();

    // Restart on the primary: the promoted version is what boots.
    let (server, addr) = start(ServeConfig {
        checkpoint: Some(cp_path.clone()),
        ..ServeConfig::default()
    });
    assert_eq!(server.model_seed(), new_seed);
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(30)).unwrap();
    let mut new_bank = ModelBank::build(new_seed).unwrap();
    assert_serves_bank(&mut c, &mut new_bank, 1, 5);
    server.shutdown();
    server.join();

    // Corrupt the primary in place: restart must fall back to the
    // `.bak` rotation (the pre-reload seed bank) and say so in stats.
    std::fs::write(&cp_path, b"torn by a crash").unwrap();
    let (server, addr) = start(ServeConfig {
        checkpoint: Some(cp_path.clone()),
        ..ServeConfig::default()
    });
    assert_eq!(
        server.model_seed(),
        MODEL_SEED,
        "fallback is the rotated bank"
    );
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(30)).unwrap();
    let mut old_bank = ModelBank::default_bank().unwrap();
    assert_serves_bank(&mut c, &mut old_bank, 1, 6);
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.checkpoint_fallback, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_utf8_reload_payload_is_bad_payload_not_a_crash() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = ServeClient::connect(&addr).unwrap();
    c.set_read_timeout(Duration::from_secs(10)).unwrap();

    let mut f = Frame::reload(77, "x");
    f.payload = vec![0xFF, 0xFE, 0xFD];
    c.send_raw(&f.encode()).unwrap();
    let reply = c.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Error);
    let (code, _, _) = reply.error_info().unwrap();
    assert_eq!(code, ErrorCode::BadPayload);

    // Still serving.
    let mut bank = ModelBank::default_bank().unwrap();
    assert_serves_bank(&mut c, &mut bank, 1, 2);
    server.shutdown();
    server.join();
}
