//! Seeded property tests for the membership layer — the satellite
//! contract: heartbeat loss at every offset, duplicate and reordered
//! pings, shard flapping, and garbage frames on the shard-side socket
//! all land on a typed error or a clean state transition. Never a
//! panic, never a hang (every socket read in here is timeout-bounded).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use qnn_serve::client::ServeClient;
use qnn_serve::membership::{
    ping_shard, DownReason, Membership, ProbeError, ShardState, Transition,
};
use qnn_serve::proto::{Frame, FrameKind, ProtoError};
use qnn_serve::server::{ServeConfig, Server};
use qnn_tensor::rng::{derive_seed, seeded};

#[test]
fn heartbeat_loss_at_every_offset_marks_down_on_the_kth_miss_256_cases() {
    // A healthy pong stream of arbitrary length, then consecutive
    // misses: the down transition must fire on exactly the k-th miss —
    // not earlier, not later, whatever the offset.
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0xBEA7, case));
        let n = r.gen_range(1..5usize);
        let shard = r.gen_range(0..n);
        let k = r.gen_range(1..6u32);
        let offset = r.gen_range(0..32usize);
        let mut m = Membership::new(n, k);
        for _ in 0..offset {
            assert_eq!(m.on_pong(shard).unwrap(), None, "case {case}: healthy pong");
        }
        for miss in 1..=k {
            let t = m.on_miss(shard).unwrap();
            if miss < k {
                assert_eq!(t, None, "case {case}: down before miss {k} (at {miss})");
                assert_eq!(m.state(shard).unwrap(), ShardState::Up);
            } else {
                assert_eq!(
                    t,
                    Some(Transition::WentDown(shard, DownReason::MissedBeats)),
                    "case {case}: k-th miss must mark down"
                );
            }
        }
        assert!(!m.is_up(shard), "case {case}");
        // Every other shard is untouched.
        assert_eq!(m.live_count(), n - 1, "case {case}");
    }
}

#[test]
fn random_event_schedules_match_the_oracle_256_cases() {
    // Arbitrary interleavings of pongs, misses, and transport failures
    // across shards — duplicated pongs, reordered events, the lot. An
    // inline oracle tracks consecutive misses per shard; the machine
    // must agree with it after every event, and transitions must only
    // ever be Up→Down or Down→Up.
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0x0DD5, case));
        let n = r.gen_range(1..6usize);
        let k = r.gen_range(1..5u32);
        let mut m = Membership::new(n, k);
        let mut oracle_up = vec![true; n];
        let mut oracle_misses = vec![0u32; n];
        for step in 0..64 {
            let shard = r.gen_range(0..n);
            let was_up = oracle_up[shard];
            let ev = r.gen_range(0..4u32); // pong twice as likely as the rest
            let t = match ev {
                0 | 1 => {
                    oracle_misses[shard] = 0;
                    oracle_up[shard] = true;
                    m.on_pong(shard).unwrap()
                }
                2 => {
                    oracle_misses[shard] += 1;
                    if oracle_misses[shard] >= k {
                        oracle_up[shard] = false;
                    }
                    m.on_miss(shard).unwrap()
                }
                _ => {
                    oracle_misses[shard] = k;
                    oracle_up[shard] = false;
                    m.on_transport_failure(shard).unwrap()
                }
            };
            assert_eq!(
                m.is_up(shard),
                oracle_up[shard],
                "case {case} step {step}: machine disagrees with oracle"
            );
            // A transition is exactly an up/down flip of this shard.
            match t {
                Some(Transition::CameUp(s)) => {
                    assert_eq!(s, shard);
                    assert!(!was_up && oracle_up[shard], "case {case} step {step}");
                }
                Some(Transition::WentDown(s, _)) => {
                    assert_eq!(s, shard);
                    assert!(was_up && !oracle_up[shard], "case {case} step {step}");
                }
                None => assert_eq!(
                    was_up, oracle_up[shard],
                    "case {case} step {step}: silent flip"
                ),
            }
        }
        assert_eq!(
            m.live_count(),
            oracle_up.iter().filter(|&&u| u).count(),
            "case {case}"
        );
    }
}

#[test]
fn flapping_down_then_up_transitions_cleanly_256_cases() {
    // Kill and revive the same shard over and over: each round must
    // yield exactly one WentDown and one CameUp, with the miss budget
    // fully recharged by the reviving pong.
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0xF1A9, case));
        let k = r.gen_range(1..5u32);
        let rounds = r.gen_range(2..6usize);
        let mut m = Membership::new(1, k);
        for round in 0..rounds {
            for miss in 1..=k {
                let t = m.on_miss(0).unwrap();
                assert_eq!(
                    t.is_some(),
                    miss == k,
                    "case {case} round {round}: transition at miss {miss}/{k}"
                );
            }
            // Extra misses beyond the budget stay silent.
            for _ in 0..r.gen_range(0..3u32) {
                assert_eq!(m.on_miss(0).unwrap(), None, "case {case} round {round}");
            }
            assert_eq!(
                m.on_pong(0).unwrap(),
                Some(Transition::CameUp(0)),
                "case {case} round {round}: revive"
            );
            assert!(m.is_up(0));
        }
    }
}

#[test]
fn unknown_shard_indices_are_typed_errors_256_cases() {
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0xBAD5, case));
        let n = r.gen_range(1..8usize);
        let bad = n + r.gen_range(0..1000usize);
        let mut m = Membership::new(n, 3);
        let err = m.on_pong(bad).unwrap_err();
        assert_eq!(err.shard, bad, "case {case}");
        assert_eq!(err.cluster_size, n, "case {case}");
        assert!(m.on_miss(bad).is_err(), "case {case}");
        assert!(m.on_transport_failure(bad).is_err(), "case {case}");
        assert!(m.state(bad).is_err(), "case {case}");
        assert_eq!(m.live_count(), n, "case {case}: no state damage");
    }
}

/// What the fake shard answers a probe with.
enum Malice {
    /// Seeded garbage bytes, then close.
    Garbage(Vec<u8>),
    /// A well-formed frame of the wrong kind, then close.
    WrongKind(Frame),
    /// A well-formed pong with the wrong request id, then close.
    WrongId(u64),
    /// Close without writing anything.
    SlamShut,
    /// A valid header declaring a payload that never comes.
    TruncatedFrame,
}

impl Malice {
    fn arbitrary(case: u64) -> Malice {
        let mut r = seeded(derive_seed(0x6A5B, case));
        match r.gen_range(0..8u32) {
            // Garbage dominates: it is the widest input space.
            0..=3 => {
                let n = r.gen_range(1..200usize);
                Malice::Garbage((0..n).map(|_| (r.next_u32() & 0xFF) as u8).collect())
            }
            4 => Malice::WrongKind(Frame::error(
                r.next_u64(),
                qnn_serve::ErrorCode::Internal,
                0,
                "synthetic",
            )),
            5 => Malice::WrongId(r.next_u64() | 0x8000_0000_0000_0000),
            6 => Malice::SlamShut,
            _ => Malice::TruncatedFrame,
        }
    }
}

#[test]
fn garbage_frames_on_the_shard_socket_are_typed_probe_errors_256_cases() {
    // A fake shard that answers probes maliciously. Every case must end
    // in a typed ProbeError — never a panic, and never a hang (the
    // probe connection carries a read timeout; the malicious peer also
    // closes after answering, so most cases fail instantly on EOF).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        for case in 0..256u64 {
            let (mut conn, _) = listener.accept().expect("accept");
            // Drain the incoming ping so the client's write never errors
            // before the malicious answer lands.
            let mut ping_buf = [0u8; 24];
            let _ = conn.read_exact(&mut ping_buf);
            match Malice::arbitrary(case) {
                Malice::Garbage(bytes) => {
                    let _ = conn.write_all(&bytes);
                }
                Malice::WrongKind(frame) => {
                    let _ = conn.write_all(&frame.encode());
                }
                Malice::WrongId(id) => {
                    let _ = conn.write_all(&Frame::pong(id).encode());
                }
                Malice::SlamShut => {}
                Malice::TruncatedFrame => {
                    let bytes = Frame::infer_ok(1, &[1.0, 2.0, 3.0]).encode();
                    let _ = conn.write_all(&bytes[..bytes.len() - 7]);
                }
            }
            // Drop closes the socket; the probe sees EOF where the
            // malicious answer left off.
        }
    });

    for case in 0..256u64 {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let req_id = derive_seed(0x9109, case);
        let err = ping_shard(&mut conn, req_id).expect_err(&format!(
            "case {case}: a malicious answer must not probe Ok"
        ));
        match (Malice::arbitrary(case), err) {
            (Malice::Garbage(_), ProbeError::Recv(_)) => {}
            (Malice::WrongKind(_), ProbeError::Unexpected(kind)) => {
                assert_eq!(kind, FrameKind::Error, "case {case}")
            }
            // The stray-pong budget runs out at EOF (connection closed
            // after the single wrong-id pong).
            (Malice::WrongId(_), ProbeError::Recv(ProtoError::Eof)) => {}
            (Malice::SlamShut, ProbeError::Recv(ProtoError::Eof)) => {}
            (Malice::TruncatedFrame, ProbeError::Recv(ProtoError::Truncated { .. })) => {}
            (_, err) => panic!("case {case}: unexpected probe error {err:?}"),
        }
    }
    server.join().expect("malicious shard thread");
}

#[test]
fn a_silent_peer_costs_one_timeout_not_a_hang() {
    // The one failure mode the malicious-answer sweep can't cover with
    // closed sockets: a peer that accepts, stays open, and says
    // nothing. The probe must come back within its read timeout.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || listener.accept());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    let start = std::time::Instant::now();
    match ping_shard(&mut conn, 7) {
        Err(ProbeError::Recv(ProtoError::Io { .. })) => {}
        other => panic!("expected an Io timeout, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "probe must respect the socket timeout"
    );
    drop(conn);
    let _ = hold.join();
}

#[test]
fn duplicate_and_reordered_pings_on_a_live_server_each_get_their_pong() {
    // Protocol-level duplicates/reordering: fire pings with repeated
    // and out-of-order ids at a real shard server in one burst; every
    // single one must come back as a pong with its id — including
    // duplicates, and including while the server is draining.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("server");
    let mut client = ServeClient::connect(&server.local_addr().to_string()).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(5))
        .expect("timeout");

    let ids: Vec<u64> = vec![9, 3, 3, 7, 1, 9, 9, 2, 1000, 3];
    let mut burst = Vec::new();
    for &id in &ids {
        burst.extend_from_slice(&Frame::ping(id).encode());
    }
    client.send_raw(&burst).expect("burst");
    let mut got: Vec<u64> = (0..ids.len())
        .map(|_| {
            let f = client.recv_frame().expect("pong");
            assert_eq!(f.kind, FrameKind::Pong);
            f.req_id
        })
        .collect();
    // Pongs for one connection come back in order today, but the
    // contract is only "every ping is answered with its id".
    got.sort_unstable();
    let mut want = ids.clone();
    want.sort_unstable();
    assert_eq!(got, want);

    // Heartbeats keep answering during a graceful drain.
    server.shutdown();
    client.ping().expect("ping during drain");
    // Drain completes (queue empty) and the server exits.
    let _ = server.join();
}
