//! The kill-a-shard-mid-soak chaos test the tentpole contract pins:
//! with a fixed seed, killing one of three shards mid-soak yields a
//! bit-identical answer or a typed retryable error for 100% of
//! requests — zero hangs, zero panics.
//!
//! Kill point and victim come from `derive_seed` streams off a fixed
//! fault seed — the same seeding discipline `qnn-faults` uses for its
//! deterministic corruption campaigns — so the schedule is a pure
//! function of the seed, not of timing.

use std::time::Duration;

use qnn_serve::client::ServeClient;
use qnn_serve::cluster::{Router, RouterConfig};
use qnn_serve::model::{self, ModelBank, MODEL_SEED};
use qnn_serve::server::{ServeConfig, Server};
use qnn_serve::NUM_PRECISIONS;
use qnn_tensor::rng::derive_seed;

/// The fault seed: every kill-schedule quantity derives from it.
const CHAOS_SEED: u64 = 0x000C_1A05;

fn start_shard() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("shard start")
}

#[test]
fn killing_a_shard_mid_soak_stays_bit_identical_or_typed_retryable() {
    let shards: Vec<Server> = (0..3).map(|_| start_shard()).collect();
    let shard_addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let router = Router::start(RouterConfig {
        shards: shard_addrs,
        heartbeat: Duration::from_millis(20),
        k_misses: 2,
        probe_timeout: Duration::from_millis(200),
        forward_timeout: Duration::from_secs(2),
        ..RouterConfig::default()
    })
    .expect("router start");

    let mut bank = ModelBank::default_bank().expect("reference bank");
    let input_len = bank.input_len();

    // Deterministic kill schedule: which shard dies, and after how many
    // verified responses. Both are seed streams, nothing is timing- or
    // thread-dependent.
    let requests = 84usize; // 12 per Table III precision
    let victim = (derive_seed(CHAOS_SEED, 1) % 3) as usize;
    let kill_after = 20 + (derive_seed(CHAOS_SEED, 2) % 20) as usize; // 20..40

    let mut client = ServeClient::connect(&router.local_addr().to_string()).expect("connect");
    // Any hang surfaces as a read timeout, which fails the test.
    client
        .set_read_timeout(Duration::from_secs(5))
        .expect("timeout");

    let mut killed = false;
    let (mut busy_retries, mut shard_down_retries) = (0usize, 0usize);
    for i in 0..requests {
        if i == kill_after {
            shards[victim].kill();
            killed = true;
        }
        let tag = (i % usize::from(NUM_PRECISIONS)) as u8;
        let image = model::test_image(MODEL_SEED, i as u64, input_len);
        let expected = bank.forward_single(tag, &image).expect("reference forward");
        // The contract under test: every request either returns the
        // exact single-shot bits (possibly after retryable rejections)
        // or the retry loop surfaces a typed error — it must never
        // hang, and a wrong-bits answer is an immediate failure.
        let (logits, busy, down) = client
            .infer_retry_routed(tag, &image, 64)
            .unwrap_or_else(|e| panic!("request {i} failed non-retryably: {e}"));
        assert_eq!(
            logits, expected,
            "request {i}: logits must be bit-identical"
        );
        busy_retries += busy;
        shard_down_retries += down;
    }
    assert!(killed, "kill point {kill_after} must fall inside the soak");

    // The soak can outrun the heartbeat (k_misses · interval = 40 ms of
    // grace); wait for membership to converge on the kill before
    // asserting it registered. Bounded: a dead shard cannot pong, so
    // this settles within a few beats — 5 s means something is broken.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.live_shards() != 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "membership never noticed the kill"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Whole-cluster drain through the router: the two live shards ack,
    // the dead one is skipped.
    client.shutdown_server().expect("cluster shutdown");
    let stats = router.join();
    assert!(
        stats.went_down >= 1,
        "the kill must register in membership: {stats:?}"
    );
    // Every client attempt got exactly one reply: the successful ones
    // as relayed logits, each retry as its typed rejection.
    assert_eq!(stats.requests, requests as u64, "{stats:?}");
    assert_eq!(stats.shard_down, shard_down_retries as u64, "{stats:?}");
    assert_eq!(stats.relayed_errors, busy_retries as u64, "{stats:?}");

    for (i, shard) in shards.into_iter().enumerate() {
        let st = shard.join();
        if i != victim {
            assert!(st.requests > 0, "live shard {i} should have served: {st:?}");
        }
    }
}

#[test]
fn router_rejects_typed_and_retryable_when_every_shard_is_dead() {
    // One shard, killed before any traffic: once membership notices,
    // every inference answers ShardDown — typed, retryable, immediate.
    let shard = start_shard();
    let addr = shard.local_addr().to_string();
    let router = Router::start(RouterConfig {
        shards: vec![addr],
        heartbeat: Duration::from_millis(10),
        k_misses: 1,
        probe_timeout: Duration::from_millis(100),
        forward_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("router start");
    shard.kill();
    let _ = shard.join();

    let mut client = ServeClient::connect(&router.local_addr().to_string()).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(5))
        .expect("timeout");
    let image = vec![0.0f32; 64];
    match client.infer(0, &image) {
        Err(e) if e.is_retryable() => {}
        Err(qnn_serve::ServeError::Rejected { code, .. }) => {
            panic!("expected a retryable rejection, got {code:?}")
        }
        Err(e) => panic!("expected a typed rejection, got {e}"),
        Ok(_) => panic!("dead shard cannot answer"),
    }

    router.shutdown();
    let stats = router.join();
    assert!(stats.shard_down >= 1, "{stats:?}");
}

#[test]
fn rolling_reload_promotes_every_shard_and_a_bad_path_stops_the_roll() {
    let dir = std::env::temp_dir()
        .join("qnn-serve-rolling-reload")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let shards: Vec<Server> = (0..2).map(|_| start_shard()).collect();
    let shard_addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let router = Router::start(RouterConfig {
        shards: shard_addrs,
        heartbeat: Duration::from_millis(20),
        k_misses: 2,
        probe_timeout: Duration::from_millis(200),
        forward_timeout: Duration::from_secs(5),
        ..RouterConfig::default()
    })
    .expect("router start");

    // A checkpoint path every shard can read (same filesystem here).
    let new_seed = 0x0F17u64;
    let path = dir.join("roll.qnnf");
    qnn_serve::BankCheckpoint::capture(new_seed)
        .unwrap()
        .save(&path)
        .unwrap();

    let mut c = ServeClient::connect(&router.local_addr().to_string()).expect("connect");
    c.set_read_timeout(Duration::from_secs(30)).unwrap();

    // One Reload at the edge rolls shard by shard: both shards end up
    // on version 2 with the new seed.
    let (version, seed) = c.reload(path.to_str().unwrap()).expect("rolling reload");
    assert_eq!((version, seed), (2, new_seed));
    for s in &shards {
        assert_eq!(s.model_version(), 2, "every shard must be promoted");
        assert_eq!(s.model_seed(), new_seed);
    }

    // Routed answers now carry the new bank's exact bits.
    let mut bank = ModelBank::build(new_seed).unwrap();
    let img = model::test_image(MODEL_SEED, 9, bank.input_len());
    let (logits, _busy, _down) = c.infer_retry_routed(2, &img, 64).unwrap();
    assert_eq!(logits, bank.forward_single(2, &img).unwrap());

    // A path no shard can load refuses typed at the first shard and the
    // roll stops there — the cluster stays on the promoted version.
    let err = c
        .reload(dir.join("missing.qnnf").to_str().unwrap())
        .unwrap_err();
    assert!(
        matches!(
            err,
            qnn_serve::ServeError::Rejected {
                code: qnn_serve::ErrorCode::ReloadRejected,
                ..
            }
        ),
        "bad rolling reload must be typed, got {err:?}"
    );
    for s in &shards {
        assert_eq!(
            s.model_version(),
            2,
            "a refused roll must not regress shards"
        );
    }

    router.shutdown();
    let stats = router.join();
    assert_eq!(stats.reloads, 1, "only the good roll completes");
    for s in shards {
        s.shutdown();
        s.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
