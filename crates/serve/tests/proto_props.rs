//! Protocol fuzz-ish property tests: seeded malformed-frame generation.
//!
//! Builds valid frames from seeded randomness, then damages them every
//! way the wire can — truncation at *every* prefix length, single-byte
//! CRC-breaking corruption, unknown precision tags riding valid frames,
//! oversized payload declarations — and demands each case decode to a
//! typed [`ProtoError`] (or, for in-protocol misuse like a bad tag,
//! decode cleanly for the server to reject with a typed error frame).
//! Never a panic; and because decoding is driven off an in-memory
//! cursor, never a hang.

use std::io::Cursor;

use qnn_serve::proto::{
    parse_header, read_frame, Frame, FrameKind, ProtoError, HEADER_LEN, MAX_PAYLOAD,
};
use qnn_serve::NUM_PRECISIONS;
use qnn_tensor::rng::{derive_seed, seeded};

/// A random-but-valid frame of each kind, seeded.
fn arbitrary_frame(seed: u64) -> Frame {
    let mut r = seeded(seed);
    let req_id = r.next_u64();
    match r.gen_range(0..4u32) {
        0 => {
            let n = r.gen_range(1..96usize);
            let img: Vec<f32> = (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect();
            Frame::infer(
                req_id,
                (r.next_u32() % u32::from(NUM_PRECISIONS)) as u8,
                &img,
            )
        }
        1 => {
            let n = r.gen_range(1..16usize);
            let logits: Vec<f32> = (0..n).map(|_| r.gen_range(-4.0f32..4.0)).collect();
            Frame::infer_ok(req_id, &logits)
        }
        2 => Frame::error(
            req_id,
            qnn_serve::ErrorCode::Busy,
            r.next_u32() % 10_000,
            "synthetic",
        ),
        _ => Frame::shutdown(req_id),
    }
}

#[test]
fn valid_frames_round_trip_256_cases() {
    for case in 0..256u64 {
        let f = arbitrary_frame(derive_seed(0xF00D, case));
        let back = read_frame(&mut Cursor::new(f.encode())).expect("valid frame must decode");
        assert_eq!(back, f, "case {case}");
    }
}

#[test]
fn truncation_at_every_prefix_length_is_typed_256_cases() {
    // 256 seeded frames; for each, every proper prefix must decode to
    // Eof (empty) or Truncated (anything shorter than the full frame) —
    // never a panic, never a bogus success.
    for case in 0..256u64 {
        let bytes = arbitrary_frame(derive_seed(0xCAFE, case)).encode();
        for cut in 0..bytes.len() {
            match read_frame(&mut Cursor::new(&bytes[..cut])) {
                Err(ProtoError::Eof) => assert_eq!(cut, 0, "case {case}: Eof only at 0 bytes"),
                Err(ProtoError::Truncated { got }) => {
                    assert_eq!(got, cut, "case {case} cut {cut}: wrong byte count")
                }
                other => panic!("case {case} cut {cut}: expected truncation, got {other:?}"),
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_decodes_to_the_original_256_cases() {
    // Flip one random byte per case. Whatever field it lands in, decode
    // must either fail typed or (if it landed in `tag`, whose value is
    // not CRC-recoverable... it is — CRC covers the whole header) fail.
    // The CRC trailer itself flipped ⇒ BadCrc; header fields flipped ⇒
    // their typed error or BadCrc.
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0xBEEF, case));
        let frame = arbitrary_frame(derive_seed(0xFACE, case));
        let mut bytes = frame.encode();
        let pos = r.gen_range(0..bytes.len());
        let bit = 1u8 << r.gen_range(0..8u32);
        bytes[pos] ^= bit;
        match read_frame(&mut Cursor::new(&bytes)) {
            Ok(decoded) => {
                panic!("case {case}: corrupt byte {pos} (bit {bit:#04x}) decoded as {decoded:?}")
            }
            Err(
                ProtoError::BadMagic { .. }
                | ProtoError::BadVersion { .. }
                | ProtoError::BadKind { .. }
                | ProtoError::Oversized { .. }
                | ProtoError::BadCrc { .. }
                | ProtoError::Truncated { .. },
            ) => {}
            Err(other) => panic!("case {case}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn oversized_payload_rejected_before_allocation_256_cases() {
    // Hostile payload_len values up to u32::MAX must be refused from the
    // header alone — read_frame never tries to allocate or read them.
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0x0B0E, case));
        let mut bytes = Frame::shutdown(case).encode();
        let declared = MAX_PAYLOAD + 1 + (r.next_u32() % (u32::MAX - MAX_PAYLOAD - 1));
        bytes[16..20].copy_from_slice(&declared.to_le_bytes());
        match read_frame(&mut Cursor::new(&bytes)) {
            Err(ProtoError::Oversized { declared: d }) => assert_eq!(d, declared),
            other => panic!("case {case}: expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn unknown_precision_tags_still_frame_cleanly_256_cases() {
    // A bad tag is an application-level rejection, not a framing error:
    // the frame must decode (so the server can answer BadPrecision and
    // keep the connection) for every out-of-range tag value.
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0x7A6, case));
        let tag = NUM_PRECISIONS + (r.next_u32() % (256 - u32::from(NUM_PRECISIONS))) as u8;
        let img: Vec<f32> = (0..8).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let f = Frame::infer(case, tag, &img);
        let back = read_frame(&mut Cursor::new(f.encode())).expect("framing is tag-agnostic");
        assert_eq!(back.tag, tag);
        assert_eq!(back.kind, FrameKind::Infer);
    }
}

#[test]
fn random_garbage_streams_never_panic_256_cases() {
    for case in 0..256u64 {
        let mut r = seeded(derive_seed(0x6A5BA6E, case));
        let len = r.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..len).map(|_| (r.next_u32() & 0xFF) as u8).collect();
        // Any result is fine as long as it is a typed Result, not a
        // panic. (Random bytes opening with "QSRV"+v1 are astronomically
        // unlikely, but even then the CRC holds the line.)
        let _ = read_frame(&mut Cursor::new(&bytes));
    }
}

#[test]
fn header_parser_accepts_exactly_the_known_kinds() {
    for kind_byte in 0u8..=255 {
        let f = Frame::shutdown(1);
        let mut bytes = f.encode();
        bytes[6] = kind_byte;
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let parsed = parse_header(&header);
        match FrameKind::from_u8(kind_byte) {
            Some(k) => assert_eq!(parsed.unwrap().kind, k),
            None => {
                assert!(matches!(parsed, Err(ProtoError::BadKind { found }) if found == kind_byte))
            }
        }
    }
}
