//! Property tests for the dataset substrates.

use proptest::prelude::*;
use qnn_data::{standard_splits, Dataset, DatasetKind};

fn kinds() -> impl Strategy<Value = DatasetKind> {
    prop_oneof![
        Just(DatasetKind::Glyphs28),
        Just(DatasetKind::HouseDigits32),
        Just(DatasetKind::TexturedObjects32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated image is a valid tensor in [0, 1] with an in-range
    /// label, for any size and seed.
    #[test]
    fn generation_is_always_valid(kind in kinds(), n in 1usize..40, seed in 0u64..1000) {
        let ds = Dataset::generate(kind, n, seed);
        prop_assert_eq!(ds.len(), n);
        let (c, h, w) = kind.input_shape();
        prop_assert_eq!(ds.images().shape().dims(), &[n, c, h, w]);
        prop_assert!(ds.images().as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!(ds.labels().iter().all(|&l| l < kind.num_classes()));
    }

    /// Same seed → identical dataset; different seed → different pixels.
    #[test]
    fn determinism(kind in kinds(), seed in 0u64..1000) {
        let a = Dataset::generate(kind, 6, seed);
        let b = Dataset::generate(kind, 6, seed);
        prop_assert_eq!(&a, &b);
        let c = Dataset::generate(kind, 6, seed.wrapping_add(1));
        prop_assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    /// Split sizes always partition the test pool, with a class-balanced
    /// validation set of ~10 % (the paper's §V-A rule).
    #[test]
    fn splits_partition_the_pool(kind in kinds(), n_test in 20usize..120, seed in 0u64..500) {
        let s = standard_splits(kind, 10, n_test, seed);
        prop_assert_eq!(s.val.len() + s.test.len(), n_test);
        // Validation takes ⌊count/10⌋ per class.
        let mut per_class = vec![0usize; kind.num_classes()];
        for &l in s.val.labels() { per_class[l] += 1; }
        let mut pool_class = vec![0usize; kind.num_classes()];
        for &l in s.val.labels().iter().chain(s.test.labels()) { pool_class[l] += 1; }
        for (have, total) in per_class.iter().zip(pool_class.iter()) {
            prop_assert_eq!(*have, total / 10);
        }
    }

    /// `take` preserves image/label pairing.
    #[test]
    fn take_preserves_pairing(seed in 0u64..200, idx in proptest::collection::vec(0usize..12, 1..6)) {
        let ds = Dataset::generate(DatasetKind::Glyphs28, 12, seed);
        let sub = ds.take(&idx);
        let px = 28 * 28;
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sub.labels()[k], ds.labels()[i]);
            prop_assert_eq!(
                &sub.images().as_slice()[k * px..(k + 1) * px],
                &ds.images().as_slice()[i * px..(i + 1) * px]
            );
        }
    }
}
