//! Property tests for the dataset substrates, run as deterministic seeded
//! loops (≥256 cases each).

use qnn_data::{standard_splits, Dataset, DatasetKind};
use qnn_tensor::rng::{derive_seed, seeded, Rng};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

const KINDS: [DatasetKind; 3] = [
    DatasetKind::Glyphs28,
    DatasetKind::HouseDigits32,
    DatasetKind::TexturedObjects32,
];

fn any_kind(rng: &mut Rng) -> DatasetKind {
    KINDS[rng.gen_range(0usize..KINDS.len())]
}

/// Every generated image is a valid tensor in [0, 1] with an in-range
/// label, for any size and seed.
#[test]
fn generation_is_always_valid() {
    cases(0x60, |rng| {
        let kind = any_kind(rng);
        let n = rng.gen_range(1usize..40);
        let seed = rng.gen_range(0u64..1000);
        let ds = Dataset::generate(kind, n, seed);
        assert_eq!(ds.len(), n);
        let (c, h, w) = kind.input_shape();
        assert_eq!(ds.images().shape().dims(), &[n, c, h, w]);
        assert!(ds
            .images()
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x)));
        assert!(ds.labels().iter().all(|&l| l < kind.num_classes()));
    });
}

/// Same seed → identical dataset; different seed → different pixels.
#[test]
fn determinism() {
    cases(0x61, |rng| {
        let kind = any_kind(rng);
        let seed = rng.gen_range(0u64..1000);
        let a = Dataset::generate(kind, 6, seed);
        let b = Dataset::generate(kind, 6, seed);
        assert_eq!(&a, &b);
        let c = Dataset::generate(kind, 6, seed.wrapping_add(1));
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    });
}

/// Split sizes always partition the test pool, with a class-balanced
/// validation set of ~10 % (the paper's §V-A rule).
#[test]
fn splits_partition_the_pool() {
    cases(0x62, |rng| {
        let kind = any_kind(rng);
        let n_test = rng.gen_range(20usize..120);
        let seed = rng.gen_range(0u64..500);
        let s = standard_splits(kind, 10, n_test, seed);
        assert_eq!(s.val.len() + s.test.len(), n_test);
        // Validation takes ⌊count/10⌋ per class.
        let mut per_class = vec![0usize; kind.num_classes()];
        for &l in s.val.labels() {
            per_class[l] += 1;
        }
        let mut pool_class = vec![0usize; kind.num_classes()];
        for &l in s.val.labels().iter().chain(s.test.labels()) {
            pool_class[l] += 1;
        }
        for (have, total) in per_class.iter().zip(pool_class.iter()) {
            assert_eq!(*have, total / 10);
        }
    });
}

/// `take` preserves image/label pairing.
#[test]
fn take_preserves_pairing() {
    cases(0x63, |rng| {
        let seed = rng.gen_range(0u64..200);
        let len = rng.gen_range(1usize..6);
        let idx: Vec<usize> = (0..len).map(|_| rng.gen_range(0usize..12)).collect();
        let ds = Dataset::generate(DatasetKind::Glyphs28, 12, seed);
        let sub = ds.take(&idx);
        let px = 28 * 28;
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(sub.labels()[k], ds.labels()[i]);
            assert_eq!(
                &sub.images().as_slice()[k * px..(k + 1) * px],
                &ds.images().as_slice()[i * px..(i + 1) * px]
            );
        }
    });
}
