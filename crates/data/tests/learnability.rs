//! Learnability smoke tests: the synthetic families must be solvable by
//! small CNNs within seconds, or the Table IV/V reproductions in
//! `qnn-core` are meaningless. These use reduced networks and tiny sample
//! budgets; the experiment harness uses the full Table I architectures.

use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::arch::NetworkSpec;
use qnn_nn::{Network, TrainOutcome, Trainer, TrainerConfig};

fn small_net_for(kind: DatasetKind, seed: u64) -> Network {
    let (c, h, w) = kind.input_shape();
    let spec = NetworkSpec::new("probe", (c, h, w))
        .conv(8, 5, 1, 2)
        .relu()
        .max_pool(2, 2)
        .conv(16, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(32)
        .relu()
        .dense(10);
    Network::build(&spec, seed).unwrap()
}

fn accuracy_after_training(kind: DatasetKind, n_train: usize, epochs: usize) -> f32 {
    let splits = standard_splits(kind, n_train, 200, 42);
    let mut net = small_net_for(kind, 7);
    let trainer = Trainer::new(TrainerConfig {
        epochs,
        batch_size: 32,
        lr: 0.05,
        ..TrainerConfig::default()
    })
    .unwrap();
    let report = trainer
        .train(&mut net, splits.train.images(), splits.train.labels())
        .unwrap();
    assert_eq!(report.outcome, TrainOutcome::Converged, "{kind:?} diverged");
    trainer
        .evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap()
}

#[test]
fn glyphs_are_easy() {
    let acc = accuracy_after_training(DatasetKind::Glyphs28, 600, 6);
    assert!(acc > 0.9, "glyphs test accuracy {acc}");
}

#[test]
fn house_digits_are_learnable_but_harder() {
    let acc = accuracy_after_training(DatasetKind::HouseDigits32, 1600, 10);
    assert!(acc > 0.6, "house-digits test accuracy {acc}");
}

#[test]
fn textured_objects_are_learnable() {
    let acc = accuracy_after_training(DatasetKind::TexturedObjects32, 1600, 10);
    assert!(acc > 0.45, "textured test accuracy {acc}");
}
