#![warn(missing_docs)]

//! # qnn-data — procedural stand-ins for MNIST, SVHN and CIFAR-10
//!
//! The paper evaluates on MNIST (LeNet), SVHN (ConvNet) and CIFAR-10
//! (ALEX); those datasets are not available offline, so this crate
//! synthesizes three ten-class image families with **matched tensor
//! shapes** and **graded difficulty**:
//!
//! | Kind | Shape | Stands in for | Character |
//! |---|---|---|---|
//! | [`DatasetKind::Glyphs28`] | 28×28×1 | MNIST | seven-segment digit glyphs, mild jitter/noise — easy |
//! | [`DatasetKind::HouseDigits32`] | 32×32×3 | SVHN | colored digits over textured, cluttered backgrounds — medium |
//! | [`DatasetKind::TexturedObjects32`] | 32×32×3 | CIFAR-10 | shape × texture object classes with color/scale variation — hard |
//!
//! The study's conclusions are *relative* across precisions, so what the
//! substitution must preserve is the difficulty ordering (aggressive
//! quantization survives the easy set, breaks on the harder ones) — see
//! DESIGN.md for the full argument.
//!
//! Generation is deterministic given a seed, and the split policy follows
//! the paper: a validation set is carved out of the test set, 10 % of each
//! class (§V-A).
//!
//! ## Example
//!
//! ```
//! use qnn_data::{Dataset, DatasetKind};
//!
//! let ds = Dataset::generate(DatasetKind::Glyphs28, 50, 7);
//! assert_eq!(ds.len(), 50);
//! assert_eq!(ds.images().shape().dims(), &[50, 1, 28, 28]);
//! assert!(ds.labels().iter().all(|&l| l < 10));
//! ```

mod dataset;
mod render;

pub mod export;
pub mod glyphs;
pub mod house_digits;
pub mod textured;

pub use dataset::{standard_splits, Dataset, DatasetKind, Splits};
