use qnn_tensor::rng::Rng;
use qnn_tensor::{rng, Shape, Tensor};

use crate::{glyphs, house_digits, textured};

/// The three synthetic dataset families, in increasing difficulty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 28×28×1 seven-segment glyphs — MNIST stand-in (easy).
    Glyphs28,
    /// 32×32×3 digits over clutter — SVHN stand-in (medium).
    HouseDigits32,
    /// 32×32×3 shape×texture objects — CIFAR-10 stand-in (hard).
    TexturedObjects32,
}

impl DatasetKind {
    /// Input tensor shape `(C, H, W)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        match self {
            DatasetKind::Glyphs28 => (glyphs::CHANNELS, glyphs::SIDE, glyphs::SIDE),
            DatasetKind::HouseDigits32 => (
                house_digits::CHANNELS,
                house_digits::SIDE,
                house_digits::SIDE,
            ),
            DatasetKind::TexturedObjects32 => (textured::CHANNELS, textured::SIDE, textured::SIDE),
        }
    }

    /// Number of classes (10 for all three, like their real counterparts).
    pub fn num_classes(&self) -> usize {
        10
    }

    /// Stable short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Glyphs28 => "glyphs28",
            DatasetKind::HouseDigits32 => "house-digits32",
            DatasetKind::TexturedObjects32 => "textured-objects32",
        }
    }

    /// The real dataset this family substitutes for.
    pub fn stands_in_for(&self) -> &'static str {
        match self {
            DatasetKind::Glyphs28 => "MNIST",
            DatasetKind::HouseDigits32 => "SVHN",
            DatasetKind::TexturedObjects32 => "CIFAR-10",
        }
    }

    fn render(&self, class: usize, rng: &mut Rng) -> Vec<f32> {
        match self {
            DatasetKind::Glyphs28 => glyphs::sample(class, rng),
            DatasetKind::HouseDigits32 => house_digits::sample(class, rng),
            DatasetKind::TexturedObjects32 => textured::sample(class, rng),
        }
    }
}

/// A labelled image set: images `(N, C, H, W)` plus one class index per
/// sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    kind: DatasetKind,
    images: Tensor,
    labels: Vec<usize>,
}

impl Dataset {
    /// Synthesizes `n` samples with balanced classes (class `i % 10` for
    /// sample `i`, then shuffled), deterministically from `seed`.
    pub fn generate(kind: DatasetKind, n: usize, seed: u64) -> Self {
        let (c, h, w) = kind.input_shape();
        let mut r = rng::seeded(seed);
        let mut data = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n);
        // Balanced classes in shuffled order.
        let mut order: Vec<usize> = (0..n).map(|i| i % kind.num_classes()).collect();
        r.shuffle(&mut order);
        for &class in &order {
            data.extend_from_slice(&kind.render(class, &mut r));
            labels.push(class);
        }
        Dataset {
            kind,
            images: Tensor::from_vec(Shape::d4(n, c, h, w), data)
                .expect("generated buffer matches shape"),
            labels,
        }
    }

    /// The dataset family.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The image tensor `(N, C, H, W)`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Per-sample class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies the samples at `indices` into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> Dataset {
        let (c, h, w) = self.kind.input_shape();
        let sample = c * h * w;
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&src[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        Dataset {
            kind: self.kind,
            images: Tensor::from_vec(Shape::d4(indices.len(), c, h, w), data)
                .expect("gathered buffer matches shape"),
            labels,
        }
    }
}

/// Train/validation/test partition of one dataset family.
#[derive(Debug, Clone, PartialEq)]
pub struct Splits {
    /// Training set.
    pub train: Dataset,
    /// Validation set — carved from the test pool, 10 % of each class, as
    /// in the paper's §V-A.
    pub val: Dataset,
    /// Test set (the remaining 90 %).
    pub test: Dataset,
}

/// Generates the standard splits: `n_train` training samples and a test
/// pool of `n_test` samples from which 10 % per class becomes validation.
///
/// Train and test pools use decorrelated seeds derived from `seed`.
pub fn standard_splits(kind: DatasetKind, n_train: usize, n_test: usize, seed: u64) -> Splits {
    let train = Dataset::generate(kind, n_train, rng::derive_seed(seed, 1));
    let pool = Dataset::generate(kind, n_test, rng::derive_seed(seed, 2));
    // Per-class 10 % validation selection, deterministic order.
    let mut val_idx = Vec::new();
    let mut test_idx = Vec::new();
    let mut taken_per_class = vec![0usize; kind.num_classes()];
    let per_class_total = {
        let mut counts = vec![0usize; kind.num_classes()];
        for &l in pool.labels() {
            counts[l] += 1;
        }
        counts
    };
    for (i, &l) in pool.labels().iter().enumerate() {
        let quota = per_class_total[l] / 10;
        if taken_per_class[l] < quota {
            val_idx.push(i);
            taken_per_class[l] += 1;
        } else {
            test_idx.push(i);
        }
    }
    Splits {
        train,
        val: pool.take(&val_idx),
        test: pool.take(&test_idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Glyphs28, 20, 9);
        let b = Dataset::generate(DatasetKind::Glyphs28, 20, 9);
        assert_eq!(a, b);
        let c = Dataset::generate(DatasetKind::Glyphs28, 20, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_are_balanced() {
        let ds = Dataset::generate(DatasetKind::TexturedObjects32, 100, 3);
        let mut counts = [0usize; 10];
        for &l in ds.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn shapes_match_kind() {
        let g = Dataset::generate(DatasetKind::Glyphs28, 4, 1);
        assert_eq!(g.images().shape().dims(), &[4, 1, 28, 28]);
        let h = Dataset::generate(DatasetKind::HouseDigits32, 4, 1);
        assert_eq!(h.images().shape().dims(), &[4, 3, 32, 32]);
    }

    #[test]
    fn take_gathers_right_samples() {
        let ds = Dataset::generate(DatasetKind::Glyphs28, 10, 5);
        let sub = ds.take(&[3, 7]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels()[0], ds.labels()[3]);
        let sample = 28 * 28;
        assert_eq!(
            &sub.images().as_slice()[..sample],
            &ds.images().as_slice()[3 * sample..4 * sample]
        );
    }

    #[test]
    fn standard_splits_follow_paper_rule() {
        let s = standard_splits(DatasetKind::Glyphs28, 50, 100, 11);
        assert_eq!(s.train.len(), 50);
        // 100 test-pool samples, 10 per class → 1 per class to val.
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 90);
        // Val is class-balanced.
        let mut counts = [0usize; 10];
        for &l in s.val.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn train_and_test_pools_differ() {
        let s = standard_splits(DatasetKind::Glyphs28, 20, 20, 1);
        assert_ne!(
            s.train.images().as_slice()[..784],
            s.test.images().as_slice()[..784]
        );
    }
}
