//! Glyphs28 — the MNIST stand-in.
//!
//! One bright seven-segment digit per image, white on black, with random
//! position, scale, stroke width, slant, and additive noise. A LeNet-class
//! network reaches high accuracy quickly, and the class structure is
//! robust to aggressive quantization — matching MNIST's role in the paper
//! (every precision except fixed-point (4,4) holds ≈99 %).

use crate::render::{segment_digit, Plane};
use qnn_tensor::rng::Rng;

/// Image side length.
pub const SIDE: usize = 28;
/// Channels.
pub const CHANNELS: usize = 1;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Renders one sample of class `digit` into a `SIDE²` grayscale buffer.
///
/// # Panics
///
/// Panics if `digit >= 10`.
pub fn sample(digit: usize, rng: &mut Rng) -> Vec<f32> {
    assert!(digit < CLASSES, "digit class out of range");
    let mut p = Plane::new(SIDE, SIDE);
    let cx = 0.5 + rng.gen_range(-0.08f32..0.08);
    let cy = 0.5 + rng.gen_range(-0.08f32..0.08);
    let sx = rng.gen_range(0.14f32..0.22);
    let sy = rng.gen_range(0.24f32..0.34);
    let thick = rng.gen_range(0.035f32..0.06);
    let tilt = rng.gen_range(-0.15f32..0.15);
    let brightness = rng.gen_range(0.75f32..1.0);
    p.fill(|u, v| brightness * segment_digit(u, v, digit, cx, cy, sx, sy, thick, tilt));
    p.add_noise(0.06, rng);
    p.data
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::rng::seeded;

    #[test]
    fn sample_has_correct_size_and_range() {
        let mut r = seeded(1);
        let img = sample(3, &mut r);
        assert_eq!(img.len(), SIDE * SIDE);
        assert!(img.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn digit_pixels_brighter_than_background() {
        let mut r = seeded(2);
        let img = sample(8, &mut r); // 8 lights every segment
        let mut sorted = img.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let dark_median = sorted[img.len() / 4];
        let bright = sorted[img.len() - img.len() / 20];
        assert!(bright > dark_median + 0.4, "{bright} vs {dark_median}");
    }

    #[test]
    fn samples_vary_between_draws() {
        let mut r = seeded(3);
        let a = sample(5, &mut r);
        let b = sample(5, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_class_10() {
        let mut r = seeded(1);
        sample(10, &mut r);
    }
}
