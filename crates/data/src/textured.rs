//! TexturedObjects32 — the CIFAR-10 stand-in.
//!
//! Ten object classes defined by a shape × texture alphabet (five
//! geometric silhouettes, each either solid or striped), rendered in
//! random colors over cluttered backgrounds with scale/position jitter.
//! The class signal lives in *mid-level structure* rather than raw
//! intensity, which is what makes CIFAR-10 the set where precision choices
//! separate in the paper (Table V spans 74.8–82.3 %).

use crate::render::{shape_intensity, sine_clutter, stripes, Plane, ShapeKind};
use qnn_tensor::rng::Rng;

/// Image side length.
pub const SIDE: usize = 32;
/// Channels (RGB).
pub const CHANNELS: usize = 3;
/// Number of classes.
pub const CLASSES: usize = 10;

/// The shape/texture combination for each class index.
fn class_def(class: usize) -> (ShapeKind, bool) {
    let shapes = [
        ShapeKind::Disk,
        ShapeKind::Ring,
        ShapeKind::Square,
        ShapeKind::Frame,
        ShapeKind::Triangle,
    ];
    (shapes[class % 5], class >= 5)
}

/// Renders one sample of `class` into a `3·SIDE²` channel-planar RGB
/// buffer.
///
/// # Panics
///
/// Panics if `class >= 10`.
pub fn sample(class: usize, rng: &mut Rng) -> Vec<f32> {
    assert!(class < CLASSES, "object class out of range");
    let (shape, striped) = class_def(class);
    let bg = [
        rng.gen_range(0.15f32..0.75),
        rng.gen_range(0.15f32..0.75),
        rng.gen_range(0.15f32..0.75),
    ];
    let mut fg = [
        rng.gen_range(0.1f32..1.0),
        rng.gen_range(0.1f32..1.0),
        rng.gen_range(0.1f32..1.0),
    ];
    // Guarantee contrast on two channels so the silhouette is always
    // recoverable (CIFAR objects are hard, not invisible).
    for _ in 0..2 {
        let ch = rng.gen_range(0..3usize);
        fg[ch] = if bg[ch] > 0.45 {
            rng.gen_range(0.0f32..0.15)
        } else {
            rng.gen_range(0.75f32..1.0)
        };
    }
    let cx = 0.5 + rng.gen_range(-0.10f32..0.10);
    let cy = 0.5 + rng.gen_range(-0.10f32..0.10);
    let radius = rng.gen_range(0.22f32..0.34);
    let stripe_angle = rng.gen_range(0.0f32..std::f32::consts::PI);
    let stripe_period = rng.gen_range(0.10f32..0.16);
    let phases = [
        rng.gen_range(0.0f32..1.0),
        rng.gen_range(0.0f32..1.0),
        rng.gen_range(0.0f32..1.0),
        rng.gen_range(0.0f32..1.0),
    ];

    let mut mask = Plane::new(SIDE, SIDE);
    mask.fill(|u, v| shape_intensity(shape, u, v, cx, cy, radius));

    let bg_amp = rng.gen_range(0.05f32..0.15);
    let mut out = Vec::with_capacity(CHANNELS * SIDE * SIDE);
    for c in 0..CHANNELS {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let u = (x as f32 + 0.5) / SIDE as f32;
                let v = (y as f32 + 0.5) / SIDE as f32;
                let m = mask.data[y * SIDE + x];
                // Texture modulates the *object*: solid classes are flat,
                // striped classes carry a strong periodic pattern.
                let obj_tex = if striped {
                    0.35 + 0.65 * stripes(u, v, stripe_angle, stripe_period)
                } else {
                    1.0
                };
                let bg_val = bg[c] + bg_amp * (sine_clutter(u, v, phases) - 0.5);
                let obj_val = fg[c] * obj_tex;
                let val = bg_val + m * (obj_val - bg_val);
                out.push((val + rng.gen_range(-0.03f32..0.03)).clamp(0.0, 1.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::rng::seeded;

    #[test]
    fn size_and_range() {
        let mut r = seeded(1);
        for class in 0..CLASSES {
            let img = sample(class, &mut r);
            assert_eq!(img.len(), 3 * 32 * 32);
            assert!(img.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn striped_class_has_more_high_frequency_energy_than_solid() {
        // Compare class 0 (solid disk) with class 5 (striped disk) over many
        // samples via horizontal gradient energy: stripes (period 3–5 px)
        // add strong local gradients inside the object.
        let mut r = seeded(7);
        let grad_energy = |img: &[f32]| {
            let mut e = 0.0f32;
            for c in 0..3 {
                for y in 0..32 {
                    for x in 0..31 {
                        let i = c * 1024 + y * 32 + x;
                        e += (img[i + 1] - img[i]).abs();
                    }
                }
            }
            e
        };
        let (mut solid, mut striped) = (0.0, 0.0);
        for _ in 0..30 {
            solid += grad_energy(&sample(0, &mut r));
            striped += grad_energy(&sample(5, &mut r));
        }
        assert!(striped > solid * 1.05, "striped {striped} vs solid {solid}");
    }

    #[test]
    fn class_defs_cover_all_combinations() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..10 {
            seen.insert(format!("{:?}", class_def(c)));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_class_10() {
        let mut r = seeded(1);
        sample(10, &mut r);
    }
}
