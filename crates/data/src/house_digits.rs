//! HouseDigits32 — the SVHN stand-in.
//!
//! A colored seven-segment digit on a textured, colored background with
//! clutter and contrast variation, plus cropped distractor strokes at the
//! borders (SVHN crops often contain neighbouring digits). Harder than
//! [`Glyphs28`](crate::glyphs): low-precision formats that survive the
//! glyphs collapse here, reproducing the paper's SVHN column where
//! fixed-point (4,4) fails to converge and binary drops to chance.

use crate::render::{segment_digit, sine_clutter, Plane};
use qnn_tensor::rng::Rng;

/// Image side length.
pub const SIDE: usize = 32;
/// Channels (RGB).
pub const CHANNELS: usize = 3;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Renders one sample of class `digit` into a `3·SIDE²` RGB buffer
/// (channel-planar, matching the `(C, H, W)` tensor layout).
///
/// # Panics
///
/// Panics if `digit >= 10`.
pub fn sample(digit: usize, rng: &mut Rng) -> Vec<f32> {
    assert!(digit < CLASSES, "digit class out of range");
    // Background and foreground colors with a guaranteed minimum contrast
    // on at least one channel (SVHN digits are legible but low-contrast).
    let bg = [
        rng.gen_range(0.1f32..0.7),
        rng.gen_range(0.1f32..0.7),
        rng.gen_range(0.1f32..0.7),
    ];
    let mut fg = [
        rng.gen_range(0.2f32..1.0),
        rng.gen_range(0.2f32..1.0),
        rng.gen_range(0.2f32..1.0),
    ];
    // Force contrast on a random channel.
    let ch = rng.gen_range(0..3usize);
    fg[ch] = if bg[ch] > 0.4 {
        rng.gen_range(0.0f32..0.15)
    } else {
        rng.gen_range(0.75f32..1.0)
    };

    let phases = [
        rng.gen_range(0.0f32..1.0),
        rng.gen_range(0.0f32..1.0),
        rng.gen_range(0.0f32..1.0),
        rng.gen_range(0.0f32..1.0),
    ];
    let cx = 0.5 + rng.gen_range(-0.10f32..0.10);
    let cy = 0.5 + rng.gen_range(-0.10f32..0.10);
    let sx = rng.gen_range(0.13f32..0.20);
    let sy = rng.gen_range(0.22f32..0.32);
    let thick = rng.gen_range(0.035f32..0.055);
    let tilt = rng.gen_range(-0.2f32..0.2);

    // Distractor: a partial digit poking in from a border (like SVHN's
    // neighbouring house numbers).
    let has_distractor = rng.gen_bool(0.6);
    let d_digit = rng.gen_range(0..10usize);
    let d_cx = if rng.gen_bool(0.5) { -0.05 } else { 1.05 };
    let d_cy = 0.5 + rng.gen_range(-0.2f32..0.2);

    let mut mask = Plane::new(SIDE, SIDE);
    mask.fill(|u, v| {
        let mut m = segment_digit(u, v, digit, cx, cy, sx, sy, thick, tilt);
        if has_distractor {
            m = m.max(0.8 * segment_digit(u, v, d_digit, d_cx, d_cy, 0.15, 0.28, 0.045, 0.0));
        }
        m
    });

    let texture_amp = rng.gen_range(0.05f32..0.15);
    let mut out = Vec::with_capacity(CHANNELS * SIDE * SIDE);
    for c in 0..CHANNELS {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let u = (x as f32 + 0.5) / SIDE as f32;
                let v = (y as f32 + 0.5) / SIDE as f32;
                let tex = texture_amp * (sine_clutter(u, v, phases) - 0.5);
                let m = mask.data[y * SIDE + x];
                let val = bg[c] + tex + m * (fg[c] - bg[c] - tex);
                out.push((val + rng.gen_range(-0.04f32..0.04)).clamp(0.0, 1.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::rng::seeded;

    #[test]
    fn sample_size_and_range() {
        let mut r = seeded(1);
        let img = sample(7, &mut r);
        assert_eq!(img.len(), 3 * 32 * 32);
        assert!(img.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn channels_differ() {
        let mut r = seeded(2);
        let img = sample(4, &mut r);
        let plane = 32 * 32;
        let sums: Vec<f32> = (0..3)
            .map(|c| img[c * plane..(c + 1) * plane].iter().sum())
            .collect();
        assert!(
            (sums[0] - sums[1]).abs() > 1.0 || (sums[1] - sums[2]).abs() > 1.0,
            "RGB planes identical: {sums:?}"
        );
    }

    #[test]
    fn deterministic_given_rng_state() {
        let mut a = seeded(5);
        let mut b = seeded(5);
        assert_eq!(sample(0, &mut a), sample(0, &mut b));
    }
}
