//! Low-level procedural rendering: seven-segment digits, geometric shapes,
//! and texture/noise fills over f32 image planes.

use qnn_tensor::rng::Rng;

/// A single-channel drawing surface.
#[derive(Debug, Clone)]
pub(crate) struct Plane {
    pub w: usize,
    pub h: usize,
    pub data: Vec<f32>,
}

impl Plane {
    pub fn new(w: usize, h: usize) -> Self {
        Plane {
            w,
            h,
            data: vec![0.0; w * h],
        }
    }

    pub fn fill<F: Fn(f32, f32) -> f32>(&mut self, f: F) {
        for y in 0..self.h {
            for x in 0..self.w {
                // Normalized coordinates in [0, 1].
                let u = (x as f32 + 0.5) / self.w as f32;
                let v = (y as f32 + 0.5) / self.h as f32;
                self.data[y * self.w + x] = f(u, v);
            }
        }
    }

    pub fn add_noise(&mut self, amp: f32, rng: &mut Rng) {
        for p in &mut self.data {
            *p = (*p + rng.gen_range(-amp..amp)).clamp(0.0, 1.0);
        }
    }
}

/// Which of the seven segments are lit for each digit 0–9, in the order
/// `[top, top-left, top-right, middle, bottom-left, bottom-right, bottom]`.
pub(crate) const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Soft distance-based intensity of a capsule (thick line segment) from
/// `(ax, ay)` to `(bx, by)` with half-width `r`, evaluated at `(u, v)`.
pub(crate) fn capsule(u: f32, v: f32, ax: f32, ay: f32, bx: f32, by: f32, r: f32) -> f32 {
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 > 0.0 {
        (((u - ax) * dx + (v - ay) * dy) / len2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let (px, py) = (ax + t * dx, ay + t * dy);
    let d = ((u - px).powi(2) + (v - py).powi(2)).sqrt();
    // Smooth falloff: 1 inside, 0 beyond ~1.6 r.
    (1.0 - ((d - r) / (0.6 * r)).max(0.0)).clamp(0.0, 1.0)
}

/// Renders a seven-segment digit into normalized coordinates.
///
/// The digit occupies a box centred at `(cx, cy)` with half-width `sx` and
/// half-height `sy`; `thick` is the stroke half-width; `tilt` shears the
/// figure (italic slant) for pose variation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn segment_digit(
    u: f32,
    v: f32,
    digit: usize,
    cx: f32,
    cy: f32,
    sx: f32,
    sy: f32,
    thick: f32,
    tilt: f32,
) -> f32 {
    // Shear: shift u by tilt proportional to height above centre.
    let u = u - tilt * (cy - v);
    // Segment endpoints in the digit's local box.
    let (l, r2, t, m, b) = (cx - sx, cx + sx, cy - sy, cy, cy + sy);
    let segs: [(f32, f32, f32, f32); 7] = [
        (l, t, r2, t),  // top
        (l, t, l, m),   // top-left
        (r2, t, r2, m), // top-right
        (l, m, r2, m),  // middle
        (l, m, l, b),   // bottom-left
        (r2, m, r2, b), // bottom-right
        (l, b, r2, b),  // bottom
    ];
    let lit = &SEGMENTS[digit % 10];
    let mut best = 0.0f32;
    for (i, &(ax, ay, bx, by)) in segs.iter().enumerate() {
        if lit[i] {
            best = best.max(capsule(u, v, ax, ay, bx, by, thick));
        }
    }
    best
}

/// Signed-distance-like intensity for the shape alphabet used by the
/// CIFAR-10 stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShapeKind {
    Disk,
    Ring,
    Square,
    Frame,
    Triangle,
}

pub(crate) fn shape_intensity(
    kind: ShapeKind,
    u: f32,
    v: f32,
    cx: f32,
    cy: f32,
    radius: f32,
) -> f32 {
    let du = u - cx;
    let dv = v - cy;
    let soft = |d: f32| (1.0 - (d / (0.15 * radius)).max(0.0)).clamp(0.0, 1.0);
    match kind {
        ShapeKind::Disk => {
            let d = (du * du + dv * dv).sqrt() - radius;
            soft(d)
        }
        ShapeKind::Ring => {
            let d = ((du * du + dv * dv).sqrt() - radius).abs() - 0.35 * radius;
            soft(d)
        }
        ShapeKind::Square => {
            let d = du.abs().max(dv.abs()) - radius;
            soft(d)
        }
        ShapeKind::Frame => {
            let d = (du.abs().max(dv.abs()) - radius).abs() - 0.3 * radius;
            soft(d)
        }
        ShapeKind::Triangle => {
            // Upward triangle: inside when below the two upper edges and
            // above the base.
            let base = cy + radius * 0.75;
            let apex = cy - radius;
            if v > base {
                return soft(v - base);
            }
            // Half-width shrinks linearly toward the apex.
            let frac = ((v - apex) / (base - apex)).clamp(0.0, 1.0);
            let half_w = radius * frac;
            let d = du.abs() - half_w;
            soft(d.max(apex - v))
        }
    }
}

/// Periodic stripe texture in direction `angle`, period `period` (in
/// normalized units), intensity in `[0, 1]`.
pub(crate) fn stripes(u: f32, v: f32, angle: f32, period: f32) -> f32 {
    let t = u * angle.cos() + v * angle.sin();
    0.5 + 0.5 * (t * std::f32::consts::TAU / period).sin()
}

/// Smooth value-noise-ish background from a couple of sinusoids with
/// per-image random phases — cheap but spatially correlated, unlike white
/// noise, so convolution kernels can't trivially ignore it.
pub(crate) fn sine_clutter(u: f32, v: f32, p: [f32; 4]) -> f32 {
    let a = ((u * 6.1 + p[0]) * std::f32::consts::TAU).sin();
    let b = ((v * 4.7 + p[1]) * std::f32::consts::TAU).sin();
    let c = (((u + v) * 3.3 + p[2]) * std::f32::consts::TAU).sin();
    let d = (((u - v) * 5.9 + p[3]) * std::f32::consts::TAU).sin();
    0.5 + 0.125 * (a + b + c + d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::rng::seeded;

    #[test]
    fn capsule_is_one_on_axis_zero_far_away() {
        let v = capsule(0.5, 0.5, 0.2, 0.5, 0.8, 0.5, 0.05);
        assert!(v > 0.99);
        assert_eq!(capsule(0.5, 0.9, 0.2, 0.5, 0.8, 0.5, 0.05), 0.0);
    }

    #[test]
    fn all_ten_digits_are_distinct_patterns() {
        // Render each digit coarsely and check pairwise difference.
        let mut renders = Vec::new();
        for d in 0..10 {
            let mut p = Plane::new(16, 16);
            p.fill(|u, v| segment_digit(u, v, d, 0.5, 0.5, 0.2, 0.3, 0.06, 0.0));
            renders.push(p.data);
        }
        for i in 0..10 {
            for j in (i + 1)..10 {
                let diff: f32 = renders[i]
                    .iter()
                    .zip(&renders[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 2.0, "digits {i} and {j} look identical");
            }
        }
    }

    #[test]
    fn shapes_are_distinct() {
        let kinds = [
            ShapeKind::Disk,
            ShapeKind::Ring,
            ShapeKind::Square,
            ShapeKind::Frame,
            ShapeKind::Triangle,
        ];
        let mut renders = Vec::new();
        for &k in &kinds {
            let mut p = Plane::new(16, 16);
            p.fill(|u, v| shape_intensity(k, u, v, 0.5, 0.5, 0.3));
            renders.push(p.data);
        }
        for i in 0..renders.len() {
            for j in (i + 1)..renders.len() {
                let diff: f32 = renders[i]
                    .iter()
                    .zip(&renders[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 1.5, "shapes {i} and {j} look identical: {diff}");
            }
        }
    }

    #[test]
    fn noise_respects_clamp() {
        let mut p = Plane::new(8, 8);
        p.fill(|_, _| 0.95);
        let mut r = seeded(1);
        p.add_noise(0.3, &mut r);
        assert!(p.data.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn stripes_oscillate() {
        let a = stripes(0.0, 0.0, 0.0, 0.2);
        let b = stripes(0.05, 0.0, 0.0, 0.2); // quarter period later
        assert!((a - b).abs() > 0.3, "{a} vs {b}");
    }
}
