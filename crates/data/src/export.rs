//! Plain-text PPM/PGM export for visual inspection of the synthetic
//! datasets — no image libraries, just the Netpbm formats every viewer
//! opens.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::dataset::Dataset;

/// Renders one sample as a Netpbm document: `P2` (PGM, grayscale) for
/// single-channel datasets, `P3` (PPM, RGB) for three-channel ones.
///
/// # Panics
///
/// Panics if `index` is out of bounds.
pub fn to_netpbm(ds: &Dataset, index: usize) -> String {
    assert!(index < ds.len(), "sample index out of bounds");
    let (c, h, w) = ds.kind().input_shape();
    let plane = h * w;
    let base = index * c * plane;
    let px = ds.images().as_slice();
    let level = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
    let mut out = String::new();
    if c == 1 {
        let _ = writeln!(out, "P2\n{w} {h}\n255");
        for y in 0..h {
            for x in 0..w {
                let _ = write!(out, "{} ", level(px[base + y * w + x]));
            }
            out.push('\n');
        }
    } else {
        let _ = writeln!(out, "P3\n{w} {h}\n255");
        for y in 0..h {
            for x in 0..w {
                for ch in 0..3 {
                    let _ = write!(out, "{} ", level(px[base + ch * plane + y * w + x]));
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Writes the first `n` samples of a dataset into `dir` as
/// `<name>-<index>-class<label>.pgm/ppm` files.
///
/// # Errors
///
/// Returns any filesystem error.
pub fn write_samples(ds: &Dataset, dir: &Path, n: usize) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let (c, _, _) = ds.kind().input_shape();
    let ext = if c == 1 { "pgm" } else { "ppm" };
    for i in 0..n.min(ds.len()) {
        let path = dir.join(format!(
            "{}-{i:03}-class{}.{ext}",
            ds.kind().name(),
            ds.labels()[i]
        ));
        std::fs::write(path, to_netpbm(ds, i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetKind;

    #[test]
    fn grayscale_header_and_size() {
        let ds = Dataset::generate(DatasetKind::Glyphs28, 2, 1);
        let doc = to_netpbm(&ds, 0);
        assert!(doc.starts_with("P2\n28 28\n255"));
        // One value per pixel.
        let values: Vec<&str> = doc.split_whitespace().skip(4).collect();
        assert_eq!(values.len(), 28 * 28);
        assert!(values.iter().all(|v| v.parse::<u16>().unwrap() <= 255));
    }

    #[test]
    fn rgb_header_and_size() {
        let ds = Dataset::generate(DatasetKind::TexturedObjects32, 1, 2);
        let doc = to_netpbm(&ds, 0);
        assert!(doc.starts_with("P3\n32 32\n255"));
        let values: Vec<&str> = doc.split_whitespace().skip(4).collect();
        assert_eq!(values.len(), 3 * 32 * 32);
    }

    #[test]
    fn writes_files_with_labels_in_names() {
        let tmp = std::env::temp_dir().join("qnn-export-test");
        let _ = std::fs::remove_dir_all(&tmp);
        let ds = Dataset::generate(DatasetKind::Glyphs28, 5, 3);
        write_samples(&ds, &tmp, 3).unwrap();
        let files: Vec<_> = std::fs::read_dir(&tmp).unwrap().collect();
        assert_eq!(files.len(), 3);
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_index_panics() {
        let ds = Dataset::generate(DatasetKind::Glyphs28, 1, 1);
        to_netpbm(&ds, 1);
    }
}
