//! Bounded histograms: fixed log₂ buckets, O(1) memory per metric.

/// Number of buckets; covers magnitudes 2⁻⁴⁰ … 2²³ plus an underflow
/// bucket, enough for quantization errors (≥ half an LSB of any shipped
/// format) through cycle counts.
pub(crate) const BUCKETS: usize = 64;
/// Exponent of the underflow boundary: samples below 2^MIN_EXP land in
/// bucket 0.
pub(crate) const MIN_EXP: i32 = -40;

/// A bounded histogram over non-negative samples.
///
/// Buckets are powers of two: bucket `i > 0` holds samples in
/// `[2^(MIN_EXP+i-1), 2^(MIN_EXP+i))`; bucket 0 is the underflow bucket
/// (including exact zeros). Memory is fixed regardless of sample count,
/// and merging two histograms is element-wise addition — the properties
/// the deterministic parallel collector needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub counts: Vec<u64>,
    /// Total samples observed.
    pub count: u64,
    /// Sum of all samples (exact fold order, hence deterministic).
    pub sum: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

fn bucket_of(value: f64) -> usize {
    if !(value.is_finite()) || value <= 0.0 {
        return 0;
    }
    let exp = value.log2().floor() as i64;
    let idx = exp - i64::from(MIN_EXP) + 1;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Lower edge of bucket `i` (0.0 for the underflow bucket).
pub(crate) fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        ((MIN_EXP + i as i32 - 1) as f64).exp2()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Negative or non-finite samples are clamped
    /// into the underflow bucket but still tracked in `min`/`max`/`sum`
    /// when finite.
    pub fn observe(&mut self, value: f64) {
        if self.counts.is_empty() {
            *self = Histogram::new();
        }
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Mean of all finite samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile: the lower edge of the bucket containing the
    /// `q`-th sample (`q` in `[0, 1]`). Exact to within one power of two.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i);
            }
        }
        self.max
    }

    /// Rebuilds a histogram from the sparse `[lower_edge, count]` pairs
    /// a `qnn-trace/v1` JSONL `hist` event carries (the inverse of the
    /// encoding in `Trace::to_jsonl`). Each lower edge is mapped back to
    /// its bucket, so [`quantile`](Histogram::quantile) on the
    /// reconstruction answers exactly what it would have on the
    /// original — this is how `qnn-bench trace-summary` recovers p50/p99
    /// offline.
    pub fn from_sparse(buckets: &[(f64, u64)], sum: f64, min: f64, max: f64) -> Histogram {
        let mut h = Histogram::new();
        for &(lower, c) in buckets {
            let idx = if lower <= 0.0 || !lower.is_finite() {
                0
            } else {
                // Invert bucket_lower: lower = 2^(MIN_EXP + i - 1).
                let i = lower.log2().round() as i64 - i64::from(MIN_EXP) + 1;
                i.clamp(0, BUCKETS as i64 - 1) as usize
            };
            h.counts[idx] += c;
            h.count += c;
        }
        h.sum = sum;
        if h.count > 0 {
            h.min = min;
            h.max = max;
        }
        h
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.is_empty() {
            *self = Histogram::new();
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_magnitudes() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        // 1.0 = 2^0 → exponent 0 → bucket 41.
        assert_eq!(bucket_of(1.0), (0 - MIN_EXP + 1) as usize);
        assert_eq!(bucket_of(1.5), bucket_of(1.0));
        assert_eq!(bucket_of(2.0), bucket_of(1.0) + 1);
        // Monstrous values clamp into the last bucket.
        assert_eq!(bucket_of(1e300), BUCKETS - 1);
        // Tiny values underflow into bucket 0.
        assert_eq!(bucket_of(1e-30), 0);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 1.875).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_power_of_two_exact() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(1.0);
        }
        h.observe(1024.0);
        // p50 falls in the 1.0 bucket, p100 in the 1024.0 bucket.
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(1.0), 1024.0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(1.0);
        b.observe(1.0);
        b.observe(8.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 8.0);
        assert_eq!(a.counts[bucket_of(1.0)], 2);
    }

    #[test]
    fn sparse_round_trip_preserves_quantiles() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 2.0, 4.0, 4.0, 1024.0] {
            h.observe(v);
        }
        let sparse: Vec<(f64, u64)> = h
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), c))
            .collect();
        let back = Histogram::from_sparse(&sparse, h.sum, h.min, h.max);
        assert_eq!(back, h, "sparse encode/decode is lossless");
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn default_histogram_observes_safely() {
        let mut h = Histogram::default();
        h.observe(2.0);
        assert_eq!(h.count, 1);
    }
}
