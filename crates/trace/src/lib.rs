#![warn(missing_docs)]

//! # qnn-trace — std-only structured telemetry
//!
//! The observability substrate of the workspace: every crate above
//! `qnn-tensor` reports through this one. Four primitives:
//!
//! * **Spans** ([`span!`]) — hierarchical, monotonic wall-clock regions
//!   ("this experiment", "this layer's forward pass"). Emitted as
//!   start/end event pairs into an ordered stream.
//! * **Counters** ([`counter!`]) — named monotonic `u64` sums (GEMM flops,
//!   simulated NFU cycles, buffer reads).
//! * **Gauges** ([`gauge!`]) — named `f64` last-value-wins samples
//!   (per-stage energy attribution).
//! * **Histograms** ([`observe!`]) — bounded log₂-bucketed distributions
//!   (per-precision quantization error, saturation rates).
//!
//! ## Zero-cost when disabled
//!
//! Collection is off by default. Every macro checks [`enabled`] — a single
//! relaxed atomic load — before evaluating its arguments, so a disabled
//! build pays no formatting, no allocation, and no locking. Enabling
//! tracing may never change a computed value: the collector only observes.
//! (`crates/bench` holds the regression test that a traced Table IV run is
//! bit-identical to an untraced one.)
//!
//! ## Deterministic parallel merge
//!
//! Events recorded inside `qnn_tensor::par` workers are buffered per work
//! unit via [`capture`] and re-emitted in unit-index order via [`splice`]
//! by the thread that owns the region. The event sequence and every
//! counter/histogram total are therefore identical at any thread count —
//! the same invariant the compute kernels already guarantee for their
//! numeric results.
//!
//! ## Sessions and sinks
//!
//! ```
//! qnn_trace::start();
//! {
//!     qnn_trace::span!("work");
//!     qnn_trace::counter!("widgets", 3);
//! }
//! let trace = qnn_trace::stop();
//! assert_eq!(trace.counters["widgets"], 3);
//! println!("{}", trace.summary());
//! ```
//!
//! A finished [`Trace`] feeds any [`sink::Sink`]: [`sink::MemorySink`]
//! for tests, [`sink::JsonlSink`] for the `qnn-bench --trace` artifact,
//! [`sink::SummarySink`] for a human-readable table.

mod hist;
mod trace;

pub mod sink;

pub use hist::Histogram;
pub use trace::{SpanEvent, SummaryRow, Trace};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One raw telemetry record, as buffered before a [`Trace`] is folded.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    SpanStart {
        name: String,
        t_ns: u64,
    },
    SpanEnd {
        name: String,
        t_ns: u64,
        dur_ns: u64,
    },
    CounterAdd {
        name: String,
        delta: u64,
    },
    GaugeSet {
        name: String,
        value: f64,
    },
    HistObserve {
        name: String,
        value: f64,
    },
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Session start, in nanoseconds since the process epoch.
static START_NS: AtomicU64 = AtomicU64::new(0);

fn root() -> &'static Mutex<Vec<Op>> {
    static ROOT: OnceLock<Mutex<Vec<Op>>> = OnceLock::new();
    ROOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Monotonic nanoseconds since the first call in this process.
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

thread_local! {
    /// Stack of capture buffers; the innermost open capture receives
    /// this thread's events.
    static LOCAL: RefCell<Vec<Vec<Op>>> = const { RefCell::new(Vec::new()) };
}

/// True while a trace session is collecting. Macros check this before
/// doing any work; call sites with a non-trivial setup cost (cloning a
/// tensor to compute a quantization error) should too.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn emit(op: Op) {
    let handled = LOCAL.with(|stack| {
        if let Some(top) = stack.borrow_mut().last_mut() {
            top.push(op.clone());
            true
        } else {
            false
        }
    });
    if !handled {
        root().lock().unwrap().push(op);
    }
}

/// Starts a collection session, clearing any previous buffered events.
///
/// The collector is process-global; concurrent sessions are not supported
/// (tests that trace must serialize on a lock).
pub fn start() {
    root().lock().unwrap().clear();
    START_NS.store(now_ns(), Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops the session and folds everything recorded since [`start`] into a
/// [`Trace`]. Events are dropped (not collected) once stopped.
pub fn stop() -> Trace {
    ENABLED.store(false, Ordering::SeqCst);
    let ops = std::mem::take(&mut *root().lock().unwrap());
    Trace::from_ops(ops, START_NS.load(Ordering::SeqCst))
}

/// Adds `delta` to the named counter.
///
/// Prefer the [`counter!`] macro, which guards on [`enabled`] first.
pub fn add_counter(name: &str, delta: u64) {
    if enabled() {
        emit(Op::CounterAdd {
            name: name.to_string(),
            delta,
        });
    }
}

/// Sets the named gauge (last write wins).
///
/// Prefer the [`gauge!`] macro, which guards on [`enabled`] first.
pub fn set_gauge(name: &str, value: f64) {
    if enabled() {
        emit(Op::GaugeSet {
            name: name.to_string(),
            value,
        });
    }
}

/// Records one sample into the named bounded histogram.
///
/// Prefer the [`observe!`] macro, which guards on [`enabled`] first.
pub fn observe(name: &str, value: f64) {
    if enabled() {
        emit(Op::HistObserve {
            name: name.to_string(),
            value,
        });
    }
}

/// An open span; emits its end event (with monotonic duration) on drop.
///
/// Prefer the [`span!`] macro, which guards on [`enabled`] and scopes the
/// guard to the enclosing block.
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span, emitting its start event.
    pub fn begin(name: impl Into<String>) -> SpanGuard {
        let name = name.into();
        emit(Op::SpanStart {
            name: name.clone(),
            t_ns: now_ns(),
        });
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        emit(Op::SpanEnd {
            name: std::mem::take(&mut self.name),
            t_ns: now_ns(),
            dur_ns: self.start.elapsed().as_nanos() as u64,
        });
    }
}

/// A batch of events captured on one thread, to be re-emitted in a
/// deterministic order by [`splice`].
#[derive(Debug, Default)]
pub struct Buffer(pub(crate) Vec<Op>);

impl Buffer {
    /// True when nothing was recorded during the capture.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Runs `f` with this thread's events redirected into a fresh buffer.
///
/// This is the worker-side half of the deterministic merge:
/// `qnn_tensor::par` captures each worker's range and the owning thread
/// [`splice`]s the buffers back in range order, so the final event stream
/// is independent of the thread count. When tracing is disabled this is a
/// single atomic load and a direct call.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Buffer) {
    if !enabled() {
        return (f(), Buffer(Vec::new()));
    }
    LOCAL.with(|s| s.borrow_mut().push(Vec::new()));
    let out = f();
    let ops = LOCAL.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    (out, Buffer(ops))
}

/// Re-emits a captured buffer into the current thread's stream (the
/// enclosing capture if one is open, else the session root).
pub fn splice(buf: Buffer) {
    if buf.0.is_empty() {
        return;
    }
    let rest = LOCAL.with(|stack| {
        if let Some(top) = stack.borrow_mut().last_mut() {
            top.extend(buf.0);
            None
        } else {
            Some(buf.0)
        }
    });
    if let Some(ops) = rest {
        root().lock().unwrap().extend(ops);
    }
}

/// Opens a span scoped to the enclosing block. Arguments are
/// `format!`-style and are not evaluated when tracing is disabled.
///
/// ```
/// fn forward(layer: usize) {
///     qnn_trace::span!("fwd:{layer}");
///     // ... traced work ...
/// } // span ends here
/// ```
#[macro_export]
macro_rules! span {
    ($($arg:tt)+) => {
        let _qnn_trace_span_guard = if $crate::enabled() {
            ::std::option::Option::Some($crate::SpanGuard::begin(::std::format!($($arg)+)))
        } else {
            ::std::option::Option::None
        };
    };
}

/// Adds to a named counter; the name expression and delta are not
/// evaluated when tracing is disabled.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::add_counter(&$name, $delta as u64);
        }
    };
}

/// Sets a named gauge; arguments are not evaluated when tracing is
/// disabled.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::set_gauge(&$name, $value as f64);
        }
    };
}

/// Records a histogram sample; arguments are not evaluated when tracing
/// is disabled.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::observe(&$name, $value as f64);
        }
    };
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collects_nothing() {
        let _g = test_lock();
        assert!(!enabled());
        counter!("never", 1);
        observe!("never", 1.0);
        {
            span!("never");
        }
        start();
        let t = stop();
        assert!(t.events.is_empty());
        assert!(t.counters.is_empty());
    }

    #[test]
    fn disabled_does_not_evaluate_arguments() {
        let _g = test_lock();
        let mut evaluated = false;
        let mut probe = || {
            evaluated = true;
            1u64
        };
        counter!("probe", probe());
        assert!(!evaluated, "disabled counter! must not evaluate its delta");
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        let _g = test_lock();
        start();
        {
            span!("outer");
            counter!("n", 2);
            {
                span!("inner:{}", 1);
                counter!("n", 3);
            }
        }
        let t = stop();
        assert_eq!(t.counters["n"], 5);
        let sig = t.signature();
        assert_eq!(sig, vec!["+outer", "+inner:1", "-inner:1", "-outer"]);
    }

    #[test]
    fn capture_and_splice_preserve_unit_order() {
        let _g = test_lock();
        start();
        // Simulate three workers finishing out of order.
        let bufs: Vec<Buffer> = (0..3)
            .map(|i| {
                let ((), buf) = capture(|| {
                    counter!("unit", 1);
                    span!("unit:{i}");
                });
                buf
            })
            .collect();
        // Splice in reverse creation order is the caller's choice; par
        // always splices in range order — emulate that here.
        for buf in bufs {
            splice(buf);
        }
        let t = stop();
        assert_eq!(t.counters["unit"], 3);
        assert_eq!(
            t.signature(),
            vec!["+unit:0", "-unit:0", "+unit:1", "-unit:1", "+unit:2", "-unit:2"]
        );
    }

    #[test]
    fn capture_inside_capture_nests() {
        let _g = test_lock();
        start();
        let ((), outer) = capture(|| {
            counter!("k", 1);
            let ((), inner) = capture(|| counter!("k", 10));
            splice(inner);
        });
        splice(outer);
        let t = stop();
        assert_eq!(t.counters["k"], 11);
    }

    #[test]
    fn gauge_last_write_wins() {
        let _g = test_lock();
        start();
        gauge!("g", 1.5);
        gauge!("g", 2.5);
        let t = stop();
        assert_eq!(t.gauges["g"], 2.5);
    }

    #[test]
    fn stop_discards_later_events() {
        let _g = test_lock();
        start();
        counter!("a", 1);
        let t = stop();
        counter!("a", 100);
        assert_eq!(t.counters["a"], 1);
        start();
        let t2 = stop();
        assert!(t2.counters.is_empty());
    }
}
