//! The folded result of a collection session: an ordered span-event
//! stream plus aggregated counters, gauges and histograms, with JSONL and
//! summary-table renderers.

use std::collections::BTreeMap;

use crate::hist::{bucket_lower, Histogram};
use crate::Op;

/// One entry of the ordered span stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanEvent {
    /// A span opened.
    Start {
        /// Span name.
        name: String,
        /// Nanoseconds since the session started.
        t_ns: u64,
    },
    /// A span closed.
    End {
        /// Span name (matches the corresponding start).
        name: String,
        /// Nanoseconds since the session started.
        t_ns: u64,
        /// Monotonic duration of the span.
        dur_ns: u64,
    },
}

impl SpanEvent {
    /// The span name.
    pub fn name(&self) -> &str {
        match self {
            SpanEvent::Start { name, .. } | SpanEvent::End { name, .. } => name,
        }
    }
}

/// A finished trace: everything one session recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Span start/end events in deterministic stream order.
    pub events: Vec<SpanEvent>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

/// One row of the aggregated span summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Slash-joined span path from the root, e.g. `table4/pretrain/epoch`.
    pub path: String,
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Nanoseconds attributed to child spans at this path.
    pub child_ns: u64,
}

impl SummaryRow {
    /// Time not attributed to any child span.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

impl Trace {
    pub(crate) fn from_ops(ops: Vec<Op>, start_ns: u64) -> Trace {
        let mut t = Trace::default();
        for op in ops {
            match op {
                Op::SpanStart { name, t_ns } => t.events.push(SpanEvent::Start {
                    name,
                    t_ns: t_ns.saturating_sub(start_ns),
                }),
                Op::SpanEnd { name, t_ns, dur_ns } => t.events.push(SpanEvent::End {
                    name,
                    t_ns: t_ns.saturating_sub(start_ns),
                    dur_ns,
                }),
                Op::CounterAdd { name, delta } => {
                    *t.counters.entry(name).or_insert(0) += delta;
                }
                Op::GaugeSet { name, value } => {
                    t.gauges.insert(name, value);
                }
                Op::HistObserve { name, value } => {
                    t.hists
                        .entry(name)
                        .or_insert_with(Histogram::new)
                        .observe(value);
                }
            }
        }
        t
    }

    /// Total of the named counter, `0` when it was never incremented —
    /// the common "how many X happened" read, without an `Option` dance.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last recorded value of the named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The timing-free shape of the span stream: `+name` for starts,
    /// `-name` for ends. Two runs of the same deterministic workload have
    /// equal signatures regardless of thread count — the property the
    /// determinism regression test asserts.
    pub fn signature(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|e| match e {
                SpanEvent::Start { name, .. } => format!("+{name}"),
                SpanEvent::End { name, .. } => format!("-{name}"),
            })
            .collect()
    }

    /// Aggregates the span stream by hierarchical path.
    ///
    /// Rows are sorted by path; a parent's `child_ns` accumulates the
    /// durations of its direct children, so `self_ns` isolates time not
    /// covered by any nested span. Unbalanced end events (no matching
    /// start) are ignored.
    pub fn summary_rows(&self) -> Vec<SummaryRow> {
        let mut rows: BTreeMap<String, SummaryRow> = BTreeMap::new();
        let mut stack: Vec<String> = Vec::new();
        for ev in &self.events {
            match ev {
                SpanEvent::Start { name, .. } => stack.push(name.clone()),
                SpanEvent::End { name, dur_ns, .. } => {
                    if stack.last().map(String::as_str) != Some(name.as_str()) {
                        continue;
                    }
                    stack.pop();
                    let parent = stack.join("/");
                    let path = if parent.is_empty() {
                        name.clone()
                    } else {
                        format!("{parent}/{name}")
                    };
                    let row = rows.entry(path.clone()).or_insert(SummaryRow {
                        path,
                        count: 0,
                        total_ns: 0,
                        child_ns: 0,
                    });
                    row.count += 1;
                    row.total_ns += dur_ns;
                    if !parent.is_empty() {
                        let prow = rows.entry(parent.clone()).or_insert(SummaryRow {
                            path: parent,
                            count: 0,
                            total_ns: 0,
                            child_ns: 0,
                        });
                        prow.child_ns += dur_ns;
                    }
                }
            }
        }
        rows.into_values().collect()
    }

    /// Total duration recorded at an exact summary path, if present.
    pub fn path_total_ns(&self, path: &str) -> Option<u64> {
        self.summary_rows()
            .into_iter()
            .find(|r| r.path == path)
            .map(|r| r.total_ns)
    }

    /// Renders the trace as JSON Lines: one `meta` line, then every span
    /// event in stream order, then counters, gauges and histograms sorted
    /// by name.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n");
        for ev in &self.events {
            match ev {
                SpanEvent::Start { name, t_ns } => {
                    out.push_str(&format!(
                        "{{\"type\": \"span_start\", \"name\": {}, \"t_ns\": {t_ns}}}\n",
                        json_str(name)
                    ));
                }
                SpanEvent::End { name, t_ns, dur_ns } => {
                    out.push_str(&format!(
                        "{{\"type\": \"span_end\", \"name\": {}, \"t_ns\": {t_ns}, \"dur_ns\": {dur_ns}}}\n",
                        json_str(name)
                    ));
                }
            }
        }
        for (name, total) in &self.counters {
            out.push_str(&format!(
                "{{\"type\": \"counter\", \"name\": {}, \"total\": {total}}}\n",
                json_str(name)
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\": \"gauge\", \"name\": {}, \"value\": {}}}\n",
                json_str(name),
                json_num(*value)
            ));
        }
        for (name, h) in &self.hists {
            // Sparse bucket encoding: only non-empty buckets, as
            // [lower_edge, count] pairs.
            let buckets: Vec<String> = h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("[{}, {c}]", json_num(bucket_lower(i))))
                .collect();
            out.push_str(&format!(
                "{{\"type\": \"hist\", \"name\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}\n",
                json_str(name),
                h.count,
                json_num(h.sum),
                json_num(if h.count == 0 { 0.0 } else { h.min }),
                json_num(if h.count == 0 { 0.0 } else { h.max }),
                buckets.join(", ")
            ));
        }
        out
    }

    /// Renders a human-readable summary: the span table (calls, total,
    /// self), counter totals, gauges, and histogram statistics.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let rows = self.summary_rows();
        if !rows.is_empty() {
            out.push_str("spans (path, calls, total ms, self ms):\n");
            for r in &rows {
                let depth = r.path.matches('/').count();
                let leaf = r.path.rsplit('/').next().unwrap_or(&r.path);
                out.push_str(&format!(
                    "  {:<52} {:>7} {:>12.3} {:>12.3}\n",
                    format!("{}{}", "  ".repeat(depth), leaf),
                    r.count,
                    r.total_ns as f64 / 1e6,
                    r.self_ns() as f64 / 1e6,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, total) in &self.counters {
                out.push_str(&format!("  {name:<52} {total:>16}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<52} {value:>16.6}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (count, mean, p50, p99, max):\n");
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "  {:<52} {:>9} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    if h.count == 0 { 0.0 } else { h.max },
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 so it parses back to the same value (Rust's shortest
/// round-trip `Display`); non-finite values become `null` as in
/// `JSON.stringify`.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            format!("{}", x as i64)
        } else {
            format!("{x}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn sample_trace() -> Trace {
        let _g = test_lock();
        crate::start();
        {
            crate::span!("exp");
            {
                crate::span!("layer:0");
                crate::counter!("flops", 100);
            }
            {
                crate::span!("layer:1");
                crate::counter!("flops", 50);
            }
            crate::gauge!("energy_uj", 1.25);
            crate::observe!("err", 0.001);
            crate::observe!("err", 0.004);
        }
        crate::stop()
    }

    #[test]
    fn summary_rows_attribute_child_time() {
        let t = sample_trace();
        let rows = t.summary_rows();
        let exp = rows.iter().find(|r| r.path == "exp").unwrap();
        let l0 = rows.iter().find(|r| r.path == "exp/layer:0").unwrap();
        let l1 = rows.iter().find(|r| r.path == "exp/layer:1").unwrap();
        assert_eq!(exp.count, 1);
        assert_eq!(l0.count, 1);
        // Children are fully contained in the parent.
        assert!(l0.total_ns + l1.total_ns <= exp.total_ns);
        assert_eq!(exp.child_ns, l0.total_ns + l1.total_ns);
        assert_eq!(exp.self_ns(), exp.total_ns - exp.child_ns);
    }

    #[test]
    fn jsonl_contains_every_record_type() {
        let t = sample_trace();
        let jsonl = t.to_jsonl();
        assert!(jsonl.starts_with("{\"type\": \"meta\""));
        assert!(jsonl.contains("\"span_start\""));
        assert!(jsonl.contains("\"span_end\""));
        assert!(jsonl.contains("\"counter\""));
        assert!(jsonl.contains("\"flops\", \"total\": 150"));
        assert!(jsonl.contains("\"gauge\""));
        assert!(jsonl.contains("\"hist\""));
        // One JSON object per line, every line an object.
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn summary_renders_all_sections() {
        let t = sample_trace();
        let s = t.summary();
        assert!(s.contains("spans"));
        assert!(s.contains("layer:0"));
        assert!(s.contains("counters:"));
        assert!(s.contains("flops"));
        assert!(s.contains("gauges:"));
        assert!(s.contains("histograms"));
    }

    #[test]
    fn path_total_finds_exact_path() {
        let t = sample_trace();
        assert!(t.path_total_ns("exp").is_some());
        assert!(t.path_total_ns("exp/layer:0").is_some());
        assert!(t.path_total_ns("missing").is_none());
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        assert_eq!(t.summary(), "(empty trace)\n");
        assert!(t.to_jsonl().starts_with("{\"type\": \"meta\""));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_num_round_trip_shapes() {
        assert_eq!(json_num(3.0), "3");
        assert_eq!(json_num(0.125), "0.125");
        assert_eq!(json_num(f64::NAN), "null");
    }
}
