//! Pluggable destinations for finished traces.
//!
//! A [`Trace`] is an in-memory value; a [`Sink`] is anywhere it can land.
//! Shipped sinks: [`MemorySink`] (tests), [`JsonlSink`] (the
//! `qnn-bench --trace` artifact), [`SummarySink`] (human-readable table to
//! any writer).

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::Trace;

/// A destination for a finished trace.
pub trait Sink {
    /// Delivers a trace to this sink.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying destination.
    fn consume(&mut self, trace: &Trace) -> std::io::Result<()>;
}

/// Keeps the most recent trace in memory — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The last trace consumed, if any.
    pub last: Option<Trace>,
}

impl Sink for MemorySink {
    fn consume(&mut self, trace: &Trace) -> std::io::Result<()> {
        self.last = Some(trace.clone());
        Ok(())
    }
}

/// Writes each consumed trace as a JSON Lines file (overwriting).
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
}

impl JsonlSink {
    /// A sink writing to `path`.
    pub fn new(path: impl AsRef<Path>) -> JsonlSink {
        JsonlSink {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn consume(&mut self, trace: &Trace) -> std::io::Result<()> {
        std::fs::write(&self.path, trace.to_jsonl())
    }
}

/// Renders the human-readable summary table to a writer.
#[derive(Debug)]
pub struct SummarySink<W: Write> {
    writer: W,
}

impl<W: Write> SummarySink<W> {
    /// A sink rendering into `writer`.
    pub fn new(writer: W) -> SummarySink<W> {
        SummarySink { writer }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for SummarySink<W> {
    fn consume(&mut self, trace: &Trace) -> std::io::Result<()> {
        self.writer.write_all(trace.summary().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn tiny_trace() -> Trace {
        let _g = test_lock();
        crate::start();
        crate::counter!("c", 7);
        {
            crate::span!("s");
        }
        crate::stop()
    }

    #[test]
    fn memory_sink_stores_clone() {
        let t = tiny_trace();
        let mut sink = MemorySink::default();
        sink.consume(&t).unwrap();
        assert_eq!(sink.last.as_ref().unwrap().counters["c"], 7);
    }

    #[test]
    fn jsonl_sink_writes_file() {
        let t = tiny_trace();
        let path = std::env::temp_dir().join("qnn_trace_sink_test.jsonl");
        let mut sink = JsonlSink::new(&path);
        sink.consume(&t).unwrap();
        let body = std::fs::read_to_string(sink.path()).unwrap();
        assert!(body.contains("\"counter\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_sink_renders_table() {
        let t = tiny_trace();
        let mut sink = SummarySink::new(Vec::new());
        sink.consume(&t).unwrap();
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert!(out.contains("counters:"));
    }

    #[test]
    fn sinks_are_object_safe() {
        let t = tiny_trace();
        let mut sinks: Vec<Box<dyn Sink>> = vec![
            Box::new(MemorySink::default()),
            Box::new(SummarySink::new(Vec::new())),
        ];
        for s in &mut sinks {
            s.consume(&t).unwrap();
        }
    }
}
