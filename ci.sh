#!/usr/bin/env sh
# Offline CI gate: formatting, lints, release build, full test suite,
# and the kernel-benchmark regression check. Everything runs with
# --offline — the workspace has zero external dependencies, so no
# network access is ever needed.
#
# Mirrored stage-for-stage by .github/workflows/ci.yml; keep the two in
# sync when adding stages.
set -eu

cd "$(dirname "$0")"

STAGE="(startup)"
STAGES_RUN=""

on_exit() {
    code=$?
    echo ""
    if [ "$code" -eq 0 ]; then
        echo "CI gate passed:$STAGES_RUN"
    else
        echo "CI gate FAILED in stage: $STAGE"
    fi
}
trap on_exit EXIT

stage() {
    STAGE="$1"
    shift
    echo "== $STAGE =="
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    echo "-- $STAGE: $((end - start))s"
    STAGES_RUN="$STAGES_RUN $STAGE($((end - start))s)"
}

# Kill-and-resume gate: interrupt a crash-safe Table IV sweep after two
# cells (exit 3 = partial, by contract), resume it to completion from
# the checkpoint directory, and demand the output be byte-identical to
# an uninterrupted run.
kill_and_resume() {
    dir=$(mktemp -d)
    set +e
    ./target/release/qnn table4 smoke --resume "$dir/ckpt" --max-cells 2 \
        > "$dir/partial.txt"
    code=$?
    set -e
    if [ "$code" -ne 3 ]; then
        echo "interrupted sweep should exit 3, got $code" >&2
        return 1
    fi
    ./target/release/qnn table4 smoke --resume "$dir/ckpt" > "$dir/resumed.txt"
    ./target/release/qnn table4 smoke > "$dir/plain.txt"
    cmp "$dir/resumed.txt" "$dir/plain.txt"
    rm -rf "$dir"
}

# Thread-determinism gate: the same smoke-scale Table IV sweep must be
# byte-identical at 1 and 4 worker threads — the invariant the parallel
# compute core promises.
thread_determinism() {
    dir=$(mktemp -d)
    QNN_THREADS=1 ./target/release/qnn table4 smoke > "$dir/t1.txt"
    QNN_THREADS=4 ./target/release/qnn table4 smoke > "$dir/t4.txt"
    cmp "$dir/t1.txt" "$dir/t4.txt"
    rm -rf "$dir"
}

# Serve-soak gate: run the release inference server in the background,
# hammer it from 4 client threads with 256 requests cycling through all
# Table III precisions, and demand every response be bit-identical to a
# single-shot forward. The server records a qnn-trace JSONL
# (serve-trace.jsonl, summarized into serve-trace-summary.txt); the
# server process is always torn down, pass or fail.
serve_soak() {
    dir=$(mktemp -d)
    ./target/release/qnn serve --addr 127.0.0.1:0 --port-file "$dir/port" \
        --trace serve-trace.jsonl > "$dir/server.log" 2>&1 &
    server_pid=$!
    code=1
    tries=0
    while [ "$tries" -lt 100 ]; do
        [ -s "$dir/port" ] && break
        kill -0 "$server_pid" 2>/dev/null || break
        sleep 0.1
        tries=$((tries + 1))
    done
    set +e
    if [ -s "$dir/port" ]; then
        ./target/release/qnn-bench serve-soak --addr "$(cat "$dir/port")" \
            --clients 4 --requests 256 --shutdown
        code=$?
        # --shutdown drained the server; reap it and require a clean exit.
        if [ "$code" -eq 0 ]; then
            wait "$server_pid"
            code=$?
        fi
    else
        echo "serve-soak: server never wrote its port file" >&2
    fi
    # Teardown even on failure: nothing may outlive the stage.
    kill "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
    set -e
    cat "$dir/server.log"
    rm -rf "$dir"
    if [ "$code" -eq 0 ]; then
        ./target/release/qnn-bench trace-summary serve-trace.jsonl \
            | tee serve-trace-summary.txt
    fi
    return "$code"
}

stage fmt                 cargo fmt --all -- --check
stage clippy              cargo clippy --workspace --all-targets --offline -- -D warnings
stage build               cargo build --workspace --release --offline
stage test                cargo test --workspace -q --offline
stage bench-check         cargo run -p qnn-bench --release --offline -- bench-check
stage qkernels            cargo run -p qnn-bench --release --offline -- --quick qkernels
stage kill-resume         kill_and_resume
stage thread-determinism  thread_determinism
stage serve-soak          serve_soak
stage serve-bench         cargo run -p qnn-bench --release --offline -- --quick serve-bench
stage sync-check          cargo run -p qnn-bench --release --offline -- sync-check
