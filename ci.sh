#!/usr/bin/env sh
# Offline CI gate: formatting, lints, release build, full test suite.
# Everything runs with --offline — the workspace has zero external
# dependencies, so no network access is ever needed.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release --offline

echo "== cargo test =="
cargo test --workspace -q --offline

echo "CI gate passed."
