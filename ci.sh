#!/usr/bin/env sh
# Offline CI gate: formatting, lints, release build, full test suite,
# and the kernel-benchmark regression check. Everything runs with
# --offline — the workspace has zero external dependencies, so no
# network access is ever needed.
#
# Mirrored stage-for-stage by .github/workflows/ci.yml; keep the two in
# sync when adding stages.
set -eu

cd "$(dirname "$0")"

STAGE="(startup)"
STAGES_RUN=""

on_exit() {
    code=$?
    echo ""
    if [ "$code" -eq 0 ]; then
        echo "CI gate passed:$STAGES_RUN"
    else
        echo "CI gate FAILED in stage: $STAGE"
    fi
}
trap on_exit EXIT

stage() {
    STAGE="$1"
    shift
    echo "== $STAGE =="
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    echo "-- $STAGE: $((end - start))s"
    STAGES_RUN="$STAGES_RUN $STAGE($((end - start))s)"
}

# Kill-and-resume gate: interrupt a crash-safe Table IV sweep after two
# cells (exit 3 = partial, by contract), resume it to completion from
# the checkpoint directory, and demand the output be byte-identical to
# an uninterrupted run.
kill_and_resume() {
    dir=$(mktemp -d)
    set +e
    ./target/release/qnn table4 smoke --resume "$dir/ckpt" --max-cells 2 \
        > "$dir/partial.txt"
    code=$?
    set -e
    if [ "$code" -ne 3 ]; then
        echo "interrupted sweep should exit 3, got $code" >&2
        return 1
    fi
    ./target/release/qnn table4 smoke --resume "$dir/ckpt" > "$dir/resumed.txt"
    ./target/release/qnn table4 smoke > "$dir/plain.txt"
    cmp "$dir/resumed.txt" "$dir/plain.txt"
    rm -rf "$dir"
}

stage fmt          cargo fmt --all -- --check
stage clippy       cargo clippy --workspace --all-targets --offline -- -D warnings
stage build        cargo build --workspace --release --offline
stage test         cargo test --workspace -q --offline
stage bench-check  cargo run -p qnn-bench --release --offline -- bench-check
stage qkernels     cargo run -p qnn-bench --release --offline -- --quick qkernels
stage kill-resume  kill_and_resume
