#!/usr/bin/env sh
# Offline CI gate: formatting, lints, release build, full test suite,
# the kernel-benchmark regression check, and the serving soak stages
# (single-node and cluster). Everything runs with --offline — the
# workspace has zero external dependencies, so no network access is
# ever needed.
#
# Mirrored stage-for-stage by .github/workflows/ci.yml; keep the two in
# sync when adding stages (the sync-check stage enforces it).
#
# Usage:
#   ./ci.sh                 run every stage, in order
#   ./ci.sh --list          print the stage names, in order, and exit
#   ./ci.sh --stage NAME    reproduce a single stage locally (e.g.
#                           `./ci.sh --stage cluster-soak`); stages that
#                           run ./target/release binaries assume a prior
#                           `./ci.sh --stage build`
#
# Every run ends by writing ci-timings.json (machine-readable per-stage
# wall-clock seconds) and printing the slowest stages first.
set -eu

cd "$(dirname "$0")"

# The stage names, in run order, parsed out of this very script — the
# single source both `--list` and the unknown-`--stage` error print.
list_stages() {
    grep '^stage ' "$0" | awk '{print $2}'
}

SELECT=""
SELECT_FOUND=0
if [ "${1:-}" = "--list" ]; then
    list_stages
    exit 0
elif [ "${1:-}" = "--stage" ]; then
    if [ -z "${2:-}" ]; then
        echo "--stage needs a stage name" >&2
        exit 2
    fi
    SELECT="$2"
elif [ -n "${1:-}" ]; then
    echo "unknown argument: $1 (only --list and --stage NAME are supported)" >&2
    exit 2
fi

STAGE="(startup)"
STAGES_RUN=""
TIMINGS=""

on_exit() {
    code=$?
    echo ""
    if [ "$code" -eq 0 ] && [ -n "$SELECT" ] && [ "$SELECT_FOUND" -eq 0 ]; then
        echo "no stage named '$SELECT'; stages are:" >&2
        list_stages | sed 's/^/  /' >&2
        exit 2
    fi
    if [ "$code" -eq 0 ]; then
        echo "CI gate passed:$STAGES_RUN"
    else
        echo "CI gate FAILED in stage: $STAGE"
    fi
}
trap on_exit EXIT

stage() {
    name="$1"
    shift
    if [ -n "$SELECT" ] && [ "$name" != "$SELECT" ]; then
        return 0
    fi
    SELECT_FOUND=1
    STAGE="$name"
    echo "== $STAGE =="
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    echo "-- $STAGE: $((end - start))s"
    STAGES_RUN="$STAGES_RUN $STAGE($((end - start))s)"
    TIMINGS="$TIMINGS $STAGE:$((end - start))"
}

# Kill-and-resume gate: interrupt a crash-safe Table IV sweep after two
# cells (exit 3 = partial, by contract), resume it to completion from
# the checkpoint directory, and demand the output be byte-identical to
# an uninterrupted run.
kill_and_resume() {
    dir=$(mktemp -d)
    set +e
    ./target/release/qnn table4 smoke --resume "$dir/ckpt" --max-cells 2 \
        > "$dir/partial.txt"
    code=$?
    set -e
    if [ "$code" -ne 3 ]; then
        echo "interrupted sweep should exit 3, got $code" >&2
        return 1
    fi
    ./target/release/qnn table4 smoke --resume "$dir/ckpt" > "$dir/resumed.txt"
    ./target/release/qnn table4 smoke > "$dir/plain.txt"
    cmp "$dir/resumed.txt" "$dir/plain.txt"
    rm -rf "$dir"
}

# Thread-determinism gate: the same smoke-scale Table IV sweep must be
# byte-identical at 1 and 4 worker threads — the invariant the parallel
# compute core promises.
thread_determinism() {
    dir=$(mktemp -d)
    QNN_THREADS=1 ./target/release/qnn table4 smoke > "$dir/t1.txt"
    QNN_THREADS=4 ./target/release/qnn table4 smoke > "$dir/t4.txt"
    cmp "$dir/t1.txt" "$dir/t4.txt"
    rm -rf "$dir"
}

# Tune-smoke gate: run a cell-bounded smoke-scale mixed-precision
# autotune to completion (32 cells bounds the 7-uniform + coordinate
# -descent sweep from above) and gate the committed PARETO_tune.json
# against the fresh front: a committed point no fresh point matches
# within tolerance is PARETO-DOMINATED, as are a frontier that fails to
# parse and an empty fresh front.
tune_smoke() {
    dir=$(mktemp -d)
    ./target/release/qnn tune smoke --resume "$dir/ckpt" --max-cells 32 \
        --out "$dir/PARETO_fresh.json"
    ./target/release/qnn-bench bench-check --pareto "$dir/PARETO_fresh.json" \
        --baseline PARETO_tune.json
    rm -rf "$dir"
}

# Tune kill-and-resume gate: SIGKILL an autotune mid-sweep at a
# seed-derived cell (the CLI self-kills after recording that cell, so
# the ledger has committed it; exit 137 by contract), resume it to
# completion from the same checkpoint directory, and demand the Pareto
# artifact be byte-identical to an uninterrupted run's.
tune_resume() {
    dir=$(mktemp -d)
    seed=42
    kill_cell=$((seed % 5 + 2))
    set +e
    ./target/release/qnn tune smoke --seed "$seed" --resume "$dir/ckpt" \
        --kill-cell "$kill_cell" --out "$dir/PARETO_killed.json" \
        > "$dir/killed.txt" 2>&1
    code=$?
    set -e
    if [ "$code" -ne 137 ]; then
        echo "killed tune should exit 137 (SIGKILL), got $code" >&2
        cat "$dir/killed.txt" >&2
        return 1
    fi
    ./target/release/qnn tune smoke --seed "$seed" --resume "$dir/ckpt" \
        --out "$dir/PARETO_resumed.json"
    ./target/release/qnn tune smoke --seed "$seed" --out "$dir/PARETO_plain.json"
    cmp "$dir/PARETO_resumed.json" "$dir/PARETO_plain.json"
    rm -rf "$dir"
}

# Serve-soak gate: run the release inference server in the background,
# hammer it from 4 client threads with 256 requests cycling through all
# Table III precisions, and demand every response be bit-identical to a
# single-shot forward. The server records a qnn-trace JSONL
# (serve-trace.jsonl, summarized into serve-trace-summary.txt); the
# server process is always torn down, pass or fail.
serve_soak() {
    dir=$(mktemp -d)
    ./target/release/qnn serve --addr 127.0.0.1:0 --port-file "$dir/port" \
        --trace serve-trace.jsonl > "$dir/server.log" 2>&1 &
    server_pid=$!
    code=1
    tries=0
    while [ "$tries" -lt 100 ]; do
        [ -s "$dir/port" ] && break
        kill -0 "$server_pid" 2>/dev/null || break
        sleep 0.1
        tries=$((tries + 1))
    done
    set +e
    if [ -s "$dir/port" ]; then
        ./target/release/qnn-bench serve-soak --addr "$(cat "$dir/port")" \
            --clients 4 --requests 256 --shutdown
        code=$?
        # --shutdown drained the server; reap it and require a clean exit.
        if [ "$code" -eq 0 ]; then
            wait "$server_pid"
            code=$?
        fi
    else
        echo "serve-soak: server never wrote its port file" >&2
    fi
    # Teardown even on failure: nothing may outlive the stage.
    kill "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
    set -e
    cat "$dir/server.log"
    rm -rf "$dir"
    if [ "$code" -eq 0 ]; then
        ./target/release/qnn-bench trace-summary serve-trace.jsonl \
            | tee serve-trace-summary.txt
    fi
    return "$code"
}

# Cluster-soak gate: boot a router over three shard workers on loopback,
# soak it from 4 client threads, and SIGKILL one shard at a seed-derived
# point mid-soak. Passes only if every response is bit-identical to a
# local single-shot forward (typed retryable rejections are retried,
# never excused into wrong answers), the victim died by SIGKILL (exit
# 137), the survivors and the router drain cleanly, and the router's
# trace (router-trace.jsonl / cluster-trace-summary.txt) is collected.
cluster_soak() {
    dir=$(mktemp -d)
    for i in 1 2 3; do
        ./target/release/qnn shard --addr 127.0.0.1:0 \
            --port-file "$dir/s$i.port" > "$dir/s$i.log" 2>&1 &
        eval "s$i=\$!"
    done
    tries=0
    while [ "$tries" -lt 100 ]; do
        [ -s "$dir/s1.port" ] && [ -s "$dir/s2.port" ] && [ -s "$dir/s3.port" ] && break
        sleep 0.1
        tries=$((tries + 1))
    done
    code=1
    if [ -s "$dir/s3.port" ]; then
        ./target/release/qnn router \
            --shards "$(cat "$dir/s1.port"),$(cat "$dir/s2.port"),$(cat "$dir/s3.port")" \
            --addr 127.0.0.1:0 --port-file "$dir/r.port" \
            --heartbeat-ms 50 --k-misses 2 \
            --trace router-trace.jsonl > "$dir/router.log" 2>&1 &
        router=$!
        tries=0
        while [ "$tries" -lt 100 ]; do
            [ -s "$dir/r.port" ] && break
            kill -0 "$router" 2>/dev/null || break
            sleep 0.1
            tries=$((tries + 1))
        done
    else
        echo "cluster-soak: shards never wrote their port files" >&2
        router=""
    fi
    set +e
    if [ -n "$router" ] && [ -s "$dir/r.port" ]; then
        # Victim is shard 2; the kill point inside the soak is derived
        # from the soak seed, so the schedule is reproducible.
        ./target/release/qnn-bench cluster-soak --addr "$(cat "$dir/r.port")" \
            --clients 4 --requests 252 --kill-pid "$s2" --shutdown
        code=$?
        if [ "$code" -eq 0 ]; then
            # --shutdown drained the cluster: router and surviving
            # shards must exit 0, the victim must have died of SIGKILL.
            wait "$router" && wait "$s1" && wait "$s3"
            code=$?
            wait "$s2"
            victim=$?
            if [ "$code" -eq 0 ] && [ "$victim" -ne 137 ]; then
                echo "cluster-soak: victim shard exited $victim, expected 137 (SIGKILL)" >&2
                code=1
            fi
        fi
    elif [ -n "$router" ]; then
        echo "cluster-soak: router never wrote its port file" >&2
    fi
    # Teardown even on failure: nothing may outlive the stage.
    kill "$s1" "$s2" "$s3" 2>/dev/null
    [ -n "$router" ] && kill "$router" 2>/dev/null
    wait 2>/dev/null
    set -e
    cat "$dir"/*.log
    rm -rf "$dir"
    if [ "$code" -eq 0 ]; then
        ./target/release/qnn-bench trace-summary router-trace.jsonl \
            | tee cluster-trace-summary.txt
    fi
    return "$code"
}

# Reload-soak gate: run the release server in the background and hammer
# it from 4 client threads with 256 requests while the soak harness
# cycles 8 live hot-reloads through it. Every response must be
# bit-identical to a local forward on whichever model version the
# server accepted it under — across every swap, with zero drops or
# hangs. The server's trace (reload-trace.jsonl, summarized into
# reload-trace-summary.txt) records the reload lifecycle counters.
reload_soak() {
    dir=$(mktemp -d)
    ./target/release/qnn serve --addr 127.0.0.1:0 --port-file "$dir/port" \
        --trace reload-trace.jsonl > "$dir/server.log" 2>&1 &
    server_pid=$!
    code=1
    tries=0
    while [ "$tries" -lt 100 ]; do
        [ -s "$dir/port" ] && break
        kill -0 "$server_pid" 2>/dev/null || break
        sleep 0.1
        tries=$((tries + 1))
    done
    set +e
    if [ -s "$dir/port" ]; then
        ./target/release/qnn-bench reload-soak --addr "$(cat "$dir/port")" \
            --clients 4 --requests 256 --cycles 8 --dir "$dir/ckpts" --shutdown
        code=$?
        # --shutdown drained the server; reap it and require a clean exit.
        if [ "$code" -eq 0 ]; then
            wait "$server_pid"
            code=$?
        fi
    else
        echo "reload-soak: server never wrote its port file" >&2
    fi
    # Teardown even on failure: nothing may outlive the stage.
    kill "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
    set -e
    cat "$dir/server.log"
    rm -rf "$dir"
    if [ "$code" -eq 0 ]; then
        ./target/release/qnn-bench trace-summary reload-trace.jsonl \
            | tee reload-trace-summary.txt
    fi
    return "$code"
}

# Reload-chaos gate: boot a durable server (--checkpoint), soak it with
# live reloads, and SIGKILL it at a seed-chosen cycle so the kill lands
# inside the load/canary/persist/swap window. The server must die by
# SIGKILL (exit 137), restart from its checkpoint chain, and serve
# exactly one complete candidate bank bit-identically — never a torn
# one. A second leg truncates the primary checkpoint and demands the
# restart fall back to the .bak rotation, still complete.
reload_chaos() {
    dir=$(mktemp -d)
    code=1
    ./target/release/qnn serve --addr 127.0.0.1:0 --port-file "$dir/port" \
        --checkpoint "$dir/bank.qnnf" > "$dir/server.log" 2>&1 &
    server_pid=$!
    tries=0
    while [ "$tries" -lt 100 ]; do
        [ -s "$dir/port" ] && break
        kill -0 "$server_pid" 2>/dev/null || break
        sleep 0.1
        tries=$((tries + 1))
    done
    set +e
    if [ -s "$dir/port" ]; then
        ./target/release/qnn-bench reload-soak --addr "$(cat "$dir/port")" \
            --clients 4 --requests 192 --cycles 7 --dir "$dir/ckpts" \
            --kill-pid "$server_pid"
        code=$?
        if [ "$code" -eq 0 ]; then
            wait "$server_pid"
            victim=$?
            if [ "$victim" -ne 137 ]; then
                echo "reload-chaos: server exited $victim, expected 137 (SIGKILL)" >&2
                code=1
            fi
        fi
    else
        echo "reload-chaos: server never wrote its port file" >&2
    fi
    kill "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
    # Restart from the checkpoint chain and prove the bank is complete.
    if [ "$code" -eq 0 ]; then
        : > "$dir/port"
        ./target/release/qnn serve --addr 127.0.0.1:0 --port-file "$dir/port" \
            --checkpoint "$dir/bank.qnnf" > "$dir/restart.log" 2>&1 &
        server_pid=$!
        tries=0
        while [ "$tries" -lt 100 ]; do
            [ -s "$dir/port" ] && break
            kill -0 "$server_pid" 2>/dev/null || break
            sleep 0.1
            tries=$((tries + 1))
        done
        if [ -s "$dir/port" ]; then
            ./target/release/qnn-bench reload-verify --addr "$(cat "$dir/port")" \
                --base 0x51AB --cycles 7
            code=$?
        else
            echo "reload-chaos: restarted server never wrote its port file" >&2
            code=1
        fi
        kill "$server_pid" 2>/dev/null
        wait "$server_pid" 2>/dev/null
    fi
    # Corrupt-primary leg: only meaningful once a promote rotated a .bak.
    if [ "$code" -eq 0 ] && [ -f "$dir/bank.qnnf.bak" ]; then
        printf 'torn by a crash' > "$dir/bank.qnnf"
        : > "$dir/port"
        ./target/release/qnn serve --addr 127.0.0.1:0 --port-file "$dir/port" \
            --checkpoint "$dir/bank.qnnf" > "$dir/fallback.log" 2>&1 &
        server_pid=$!
        tries=0
        while [ "$tries" -lt 100 ]; do
            [ -s "$dir/port" ] && break
            kill -0 "$server_pid" 2>/dev/null || break
            sleep 0.1
            tries=$((tries + 1))
        done
        if [ -s "$dir/port" ]; then
            ./target/release/qnn-bench reload-verify --addr "$(cat "$dir/port")" \
                --base 0x51AB --cycles 7 \
            && grep -q 'recovered from' "$dir/fallback.log"
            code=$?
        else
            echo "reload-chaos: fallback server never wrote its port file" >&2
            code=1
        fi
        kill "$server_pid" 2>/dev/null
        wait "$server_pid" 2>/dev/null
    fi
    set -e
    cat "$dir"/*.log
    rm -rf "$dir"
    return "$code"
}

# Writes ci-timings.json ({"stage","seconds"} per stage run, in run
# order) and prints the slowest stages first — the same table the
# workflow's timing-summary job posts to the job summary.
timing_summary() {
    {
        printf '{"schema": "qnn-ci/timings/v1", "stages": ['
        first=1
        for entry in $TIMINGS; do
            [ "$first" -eq 1 ] || printf ', '
            first=0
            printf '{"stage": "%s", "seconds": %s}' \
                "${entry%:*}" "${entry##*:}"
        done
        printf ']}\n'
    } > ci-timings.json
    echo "wrote ci-timings.json"
    echo "slowest stages first (seconds):"
    for entry in $TIMINGS; do
        printf '%6s  %s\n' "${entry##*:}" "${entry%:*}"
    done | sort -rn
}

stage fmt                 cargo fmt --all -- --check
stage clippy              cargo clippy --workspace --all-targets --offline -- -D warnings
stage build               cargo build --workspace --release --offline
stage test                cargo test --workspace -q --offline
stage bench-check         cargo run -p qnn-bench --release --offline -- bench-check
stage qkernels            cargo run -p qnn-bench --release --offline -- --quick qkernels
stage kernels-bench       cargo run -p qnn-bench --release --offline -- kernels-bench
stage kill-resume         kill_and_resume
stage thread-determinism  thread_determinism
stage tune-smoke          tune_smoke
stage tune-resume         tune_resume
stage serve-soak          serve_soak
stage serve-bench         cargo run -p qnn-bench --release --offline -- --quick serve-bench
stage cluster-soak        cluster_soak
stage reload-soak         reload_soak
stage reload-chaos        reload_chaos
stage sync-check          cargo run -p qnn-bench --release --offline -- sync-check
stage timing-summary      timing_summary
