//! End-to-end integration tests: the full experiment pipeline at smoke
//! scale, across all crates through the facade.

use qnn::prelude::*;
use qnn_core::experiments::{self, ExperimentScale};
use qnn_data::standard_splits;

/// The complete Table IV pipeline at smoke scale: both benchmarks, all
/// seven precisions, energies referenced to float32.
#[test]
fn table4_pipeline_smoke() {
    let t = experiments::table4(ExperimentScale::Smoke, 2).unwrap();
    assert_eq!(t.mnist.len(), 7);
    assert_eq!(t.svhn.len(), 7);
    // The float32 row defines the zero-saving reference.
    assert!(t.mnist[0].energy_saving_pct.abs() < 1e-9);
    // Glyphs at fixed (16,16) should track FP closely even at smoke scale.
    let fp = t.mnist[0].accuracy_pct;
    let f16 = t.mnist[2].accuracy_pct;
    if let (Some(a), Some(b)) = (fp, f16) {
        assert!((a - b).abs() < 25.0, "fp {a} vs fixed16 {b}");
    }
    // Energy rows must reproduce the paper's ordering exactly.
    let energies: Vec<f64> = t.mnist.iter().map(|r| r.energy_uj).collect();
    assert!(energies[0] > energies[2]); // fp32 > fixed16
    assert!(energies[2] > energies[3]); // fixed16 > fixed8
    assert!(energies[3] > energies[6]); // fixed8 > binary
}

/// Table V + Figure 4 at smoke scale: the pareto machinery consumes the
/// generated rows.
#[test]
fn table5_and_pareto_pipeline_smoke() {
    let rows = experiments::table5(ExperimentScale::Smoke, 3).unwrap();
    assert_eq!(rows.len(), 16);
    let points = qnn_core::experiments::Table5Row::to_design_points(&rows);
    assert!(!points.is_empty());
    let frontier = pareto_frontier(&points);
    assert!(!frontier.is_empty());
    assert!(frontier.len() <= points.len());
    // Frontier energies are strictly increasing and accuracies
    // non-decreasing (the defining property of a 2-d Pareto set).
    for w in frontier.windows(2) {
        assert!(w[0].energy_uj <= w[1].energy_uj);
        assert!(w[0].accuracy_pct <= w[1].accuracy_pct);
    }
}

/// QAT through the facade: FP32 pre-train → binary retrain on the easy
/// set stays usable (the paper's MNIST binary row actually *gains*
/// accuracy).
#[test]
fn binary_qat_on_easy_set_via_facade() {
    let splits = standard_splits(DatasetKind::Glyphs28, 500, 300, 7);
    let trainer = Trainer::new(qnn_nn::TrainerConfig {
        epochs: 5,
        batch_size: 32,
        lr: 0.05,
        ..Default::default()
    })
    .unwrap();
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    trainer
        .train(&mut net, splits.train.images(), splits.train.labels())
        .unwrap();
    let fp_acc = trainer
        .evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap();
    let report = trainer
        .train_qat(
            &mut net,
            &QatConfig::new(Precision::binary()),
            splits.train.images(),
            splits.train.labels(),
            64,
        )
        .unwrap();
    assert_eq!(report.outcome, qnn_nn::TrainOutcome::Converged);
    let bin_acc = trainer
        .evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap();
    assert!(
        bin_acc > fp_acc - 0.25,
        "binary {bin_acc} collapsed vs fp {fp_acc}"
    );
}

/// The difficulty gradient that carries the paper's qualitative accuracy
/// story: fixed-point (4,4) survives the MNIST-class set but fails (or
/// collapses) on the harder SVHN-class set — the paper's NA cells.
#[test]
fn difficulty_gradient_for_aggressive_quantization() {
    let scale = ExperimentScale::Smoke;
    let run = |kind: DatasetKind, seed: u64| -> Vec<Option<f32>> {
        let (c, h, w) = kind.input_shape();
        let spec = qnn_nn::arch::NetworkSpec::new("probe", (c, h, w))
            .conv(8, 5, 1, 2)
            .relu()
            .max_pool(2, 2)
            .dense(10);
        let (n_train, n_test) = scale.samples();
        let splits = standard_splits(kind, n_train, n_test, seed);
        experiments::accuracy_sweep(
            &spec,
            &splits,
            &[
                Precision::float32(),
                Precision::fixed(8, 8),
                Precision::fixed(4, 4),
            ],
            scale,
            seed,
        )
        .unwrap()
        .into_iter()
        .map(|p| p.accuracy_pct)
        .collect()
    };
    // Easy set: everything converges well above chance, 4-bit close to FP.
    let glyphs = run(DatasetKind::Glyphs28, 31);
    for (i, acc) in glyphs.iter().enumerate() {
        let a = acc.expect("glyphs must converge at every precision");
        assert!(a > 50.0, "glyphs precision #{i} at {a}%");
    }
    // Hard set: 4-bit either diverges outright (the paper's NA) or lands
    // far below the easy set's 4-bit result.
    let house = run(DatasetKind::HouseDigits32, 32);
    let glyphs_q4 = glyphs[2].unwrap();
    match house[2] {
        None => {} // NA — exactly the paper's SVHN (4,4) cell
        Some(a) => assert!(
            a < glyphs_q4 - 20.0,
            "4-bit on the hard set should collapse: {a}% vs glyphs {glyphs_q4}%"
        ),
    }
}
