//! Cross-crate integration tests of the paper's hardware-side claims —
//! fast (no training), exercising the public facade the way a downstream
//! user would.

use qnn::prelude::*;
use qnn::{accel, hw, nn};

/// Table III: every published row within model tolerance, via the facade.
#[test]
fn table3_rows_within_tolerance() {
    for row in accel::paper::table3() {
        let m = AcceleratorDesign::new(row.precision).report();
        assert!(
            (m.area_mm2 - row.area_mm2).abs() / row.area_mm2 < 0.08,
            "{}: area {:.2} vs {:.2}",
            row.precision.label(),
            m.area_mm2,
            row.area_mm2
        );
        assert!(
            (m.power_mw - row.power_mw).abs() / row.power_mw < 0.13,
            "{}: power {:.1} vs {:.1}",
            row.precision.label(),
            m.power_mw,
            row.power_mw
        );
    }
}

/// §V-A: buffers dominate both area and power for every precision.
#[test]
fn buffers_dominate_area_and_power() {
    for p in Precision::paper_sweep() {
        let design = AcceleratorDesign::new(p).synthesize();
        let mem_area = design.area_fraction(hw::Category::Memory);
        let mem_power = design.power_fraction(hw::Category::Memory);
        for c in [
            hw::Category::Registers,
            hw::Category::Combinational,
            hw::Category::BufInv,
        ] {
            assert!(mem_area > design.area_fraction(c), "{}", p.label());
            assert!(mem_power > design.power_fraction(c), "{}", p.label());
        }
    }
}

/// Table IV energy column: per-image energies of LeNet/ConvNet within 35 %
/// of the published values, and savings within a few points.
#[test]
fn table4_energy_columns() {
    let lenet_wl = zoo::lenet().workload().unwrap();
    let convnet_wl = zoo::convnet().workload().unwrap();
    let base_lenet = AcceleratorDesign::new(Precision::float32()).energy_per_image(&lenet_wl);
    let base_convnet = AcceleratorDesign::new(Precision::float32()).energy_per_image(&convnet_wl);
    for (p, mnist_uj, svhn_uj) in accel::paper::table4_energies() {
        let d = AcceleratorDesign::new(p);
        if let Some(want) = mnist_uj {
            let e = d.energy_per_image(&lenet_wl);
            assert!(
                (e.total_uj() - want).abs() / want < 0.35,
                "{} lenet: {:.2} vs {:.2}",
                p.label(),
                e.total_uj(),
                want
            );
            // Savings are ratios and must track tightly.
            if p.is_quantized() {
                let want_saving = (1.0 - want / 60.74) * 100.0;
                let got_saving = e.saving_vs(&base_lenet);
                assert!(
                    (got_saving - want_saving).abs() < 6.0,
                    "{} lenet saving: {got_saving:.1} vs {want_saving:.1}",
                    p.label()
                );
            }
        }
        if let Some(want) = svhn_uj {
            let e = d.energy_per_image(&convnet_wl);
            assert!(
                (e.total_uj() - want).abs() / want < 0.35,
                "{} convnet: {:.2} vs {:.2}",
                p.label(),
                e.total_uj(),
                want
            );
            let _ = &base_convnet;
        }
    }
}

/// §V-B: parameter memory shrinks linearly with weight precision, 2–32×.
#[test]
fn memory_reduction_claim() {
    for spec in zoo::all_paper_networks() {
        let r16 = nn::memory::reduction_vs_float32(&spec, Precision::fixed(16, 16)).unwrap();
        let r8 = nn::memory::reduction_vs_float32(&spec, Precision::fixed(8, 8)).unwrap();
        let rbin = nn::memory::reduction_vs_float32(&spec, Precision::binary()).unwrap();
        assert!(r16 > 1.9 && r16 <= 2.0, "{}: {r16}", spec.name());
        assert!(r8 > 3.7 && r8 <= 4.0, "{}: {r8}", spec.name());
        assert!(rbin > 15.0 && rbin <= 32.0, "{}: {rbin}", spec.name());
    }
}

/// Figure 4's geometric claim, using the paper's own published points:
/// expanded low-precision networks dominate the FP32 baseline.
#[test]
fn paper_points_show_expansion_dominance() {
    let rows = qnn::core::paper::table5();
    let points: Vec<DesignPoint> = rows
        .iter()
        .map(|(net, p, acc, e)| DesignPoint::new(format!("{} {}", p.label(), net), *acc, *e))
        .collect();
    let frontier = pareto_frontier(&points);
    // The FP32 baseline is NOT on the frontier — pow2++ dominates it.
    assert!(
        !frontier.iter().any(|d| d.label.contains("Floating-Point")),
        "frontier: {:?}",
        frontier.iter().map(|d| &d.label).collect::<Vec<_>>()
    );
    assert!(frontier
        .iter()
        .any(|d| d.label.contains("Powers of Two (6,16) alex++")));
}

/// The runtime claim: per-image processing time is nearly constant across
/// precisions at fixed frequency.
#[test]
fn runtime_constant_across_precisions() {
    for spec in [zoo::lenet(), zoo::convnet(), zoo::alex()] {
        let wl = spec.workload().unwrap();
        let times: Vec<f64> = Precision::paper_sweep()
            .into_iter()
            .map(|p| AcceleratorDesign::new(p).energy_per_image(&wl).runtime_us())
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - min) / max < 0.01, "{}: {times:?}", spec.name());
    }
}

/// The facade's prelude exposes a coherent API surface.
#[test]
fn prelude_surface_compiles_and_works() {
    let ds = Dataset::generate(DatasetKind::Glyphs28, 10, 1);
    assert_eq!(ds.len(), 10);
    let net = Network::build(&zoo::lenet_small(), 1).unwrap();
    assert!(net.param_count() > 0);
    let q = Fixed::new(8, 4).unwrap();
    assert_eq!(q.quantize_value(0.5), 0.5);
    let _ = (
        Binary::new(),
        PowerOfTwo::new(6, 0).unwrap(),
        Minifloat::new(5, 10).unwrap(),
    );
    let _ = Sgd::new(0.1);
    let _: AcceleratorConfig = AcceleratorConfig::default();
    let _ = experiments::ExperimentScale::Smoke;
    let _: EnergyBreakdown = AcceleratorDesign::new(Precision::binary())
        .energy_per_image(&zoo::lenet().workload().unwrap());
}
